"""Worker-pool fan-out for batch evaluation.

Evaluations are pure CPU-bound functions of their config, so they
parallelize trivially across processes. Payloads are split into
contiguous chunks (several per worker, to balance uneven evaluation
costs) and submitted to a fork-context process pool. Any chunk whose
worker fails — including a hard crash that breaks the pool — is re-run
serially in the parent, so a flaky worker degrades throughput instead of
losing results. Platforms without ``fork`` (and ``jobs=1``) fall back to
a plain serial loop.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.config.schema import SystemConfig
from repro.engine.record import EvalRecord, evaluate_config
from repro.perf.workload import Workload

#: One payload: (cache key, config, workload-or-None).
Payload = tuple[str, SystemConfig, Workload | None]

#: Chunks submitted per worker; >1 balances uneven evaluation costs.
_CHUNKS_PER_WORKER = 4


def default_jobs() -> int:
    """A sensible worker count for this machine."""
    return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether the platform supports fork-based worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _evaluate_chunk(chunk: list[Payload]) -> list[EvalRecord]:
    """Evaluate one contiguous chunk of payloads (runs in a worker)."""
    return [
        evaluate_config(config, workload, key=key)
        for key, config, workload in chunk
    ]


def split_chunks(payloads: list[Payload], jobs: int) -> list[list[Payload]]:
    """Split payloads into contiguous, near-equal chunks."""
    n_chunks = min(len(payloads), max(1, jobs) * _CHUNKS_PER_WORKER)
    base, extra = divmod(len(payloads), n_chunks)
    chunks: list[list[Payload]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(payloads[start:start + size])
        start += size
    return chunks


def evaluate_payloads(
    payloads: list[Payload],
    jobs: int = 1,
) -> list[EvalRecord]:
    """Evaluate payloads, fanned out over ``jobs`` processes.

    Results come back in payload order regardless of which worker
    computed them, and are bitwise-identical to a serial run (each
    evaluation is a pure function). With ``jobs <= 1``, a single payload,
    or no ``fork`` support, the loop runs serially in-process.
    """
    if jobs <= 1 or len(payloads) <= 1 or not fork_available():
        return _evaluate_chunk(payloads)

    jobs = min(jobs, len(payloads))
    chunks = split_chunks(payloads, jobs)
    context = multiprocessing.get_context("fork")
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=context,
        ) as pool:
            futures = [pool.submit(_evaluate_chunk, c) for c in chunks]
            records: list[EvalRecord] = []
            for chunk, future in zip(chunks, futures):
                try:
                    records.extend(future.result())
                except Exception:
                    # Worker died or errored: recover this chunk serially.
                    # Deterministic evaluation errors re-raise here with a
                    # clean parent-process traceback.
                    records.extend(_evaluate_chunk(chunk))
            return records
    except OSError:
        # Pool creation itself failed (sandbox, fd limits, ...).
        return _evaluate_chunk(payloads)
