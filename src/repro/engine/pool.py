"""Worker-pool fan-out for batch evaluation.

Evaluations are pure CPU-bound functions of their config, so they
parallelize trivially across processes. Payloads are split into
contiguous chunks (several per worker, to balance uneven evaluation
costs) and submitted to a fork-context process pool. Any chunk whose
worker fails — including a hard crash that breaks the pool — is re-run
serially in the parent, so a flaky worker degrades throughput instead of
losing results; if the serial recovery fails too, the raised error
carries the original worker failure text so no traceback is silently
dropped. Platforms without ``fork`` (and ``jobs=1``) fall back to a
plain serial loop.

When :mod:`repro.obs` is active, each worker accumulates trace spans
and metric deltas locally (its registry is reset per chunk) and ships
them back with its records; the parent merges them at join, so a traced
parallel run produces one coherent timeline and one combined metrics
snapshot.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor

from repro import fastpath
from repro import obs
from repro.config.schema import SystemConfig
from repro.engine.record import EvalRecord, evaluate_config
from repro.obs import runtime as _obs_runtime
from repro.perf.workload import Workload

#: One payload: (cache key, config, workload-or-None).
Payload = tuple[str, SystemConfig, Workload | None]

#: Chunks submitted per worker; >1 balances uneven evaluation costs.
_CHUNKS_PER_WORKER = 4


def default_jobs() -> int:
    """A sensible worker count for this machine."""
    return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether the platform supports fork-based worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _evaluate_chunk(chunk: list[Payload]) -> list[EvalRecord]:
    """Evaluate one contiguous chunk of payloads (runs in a worker)."""
    return [
        evaluate_config(config, workload, key=key)
        for key, config, workload in chunk
    ]


def _memo_totals() -> dict[str, float]:
    """Flat memo counters, for before/after deltas across a chunk."""
    out: dict[str, float] = {}
    for name, counts in fastpath.stats().items():
        for field in ("hits", "misses", "evictions"):
            out[f"memo.{name}.{field}"] = float(counts[field])
    return out


def _evaluate_chunk_instrumented(
    chunk: list[Payload],
) -> tuple[list[EvalRecord], obs.MetricsSnapshot, tuple[obs.Span, ...]]:
    """Worker-side chunk evaluation that ships observability home.

    The worker's registry and span buffer are reset at chunk start, so
    what ships back is exactly this chunk's contribution. Memo counters
    persist across chunks (clearing them would kill the fast path), so
    their contribution is shipped as a before/after delta folded into
    the metric counters.
    """
    obs.reset()
    before = _memo_totals()
    chunk_timer = obs.timer()
    records = _evaluate_chunk(chunk)
    chunk_timer.observe("pool.chunk_s")
    after = _memo_totals()
    delta = obs.export_state()
    for name, total in after.items():
        moved = total - before.get(name, 0.0)
        if moved:
            delta.counters[name] = delta.counters.get(name, 0.0) + moved
    return records, delta, obs.spans()


def split_chunks(payloads: list[Payload], jobs: int) -> list[list[Payload]]:
    """Split payloads into contiguous, near-equal chunks."""
    n_chunks = min(len(payloads), max(1, jobs) * _CHUNKS_PER_WORKER)
    base, extra = divmod(len(payloads), n_chunks)
    chunks: list[list[Payload]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(payloads[start:start + size])
        start += size
    return chunks


class WorkerRecoveryError(RuntimeError):
    """A chunk failed in a worker *and* during serial recovery.

    The message carries the original worker failure text (which the
    recovery attempt would otherwise discard) and the recovery failure
    is chained as ``__cause__``.
    """


def _format_failure(exc: BaseException) -> str:
    """One-line ``Type: message`` form of an exception."""
    return "".join(traceback.format_exception_only(exc)).strip()


def evaluate_payloads(
    payloads: list[Payload],
    jobs: int = 1,
) -> list[EvalRecord]:
    """Evaluate payloads, fanned out over ``jobs`` processes.

    Results come back in payload order regardless of which worker
    computed them, and are bitwise-identical to a serial run (each
    evaluation is a pure function). With ``jobs <= 1``, a single payload,
    or no ``fork`` support, the loop runs serially in-process.

    Raises:
        WorkerRecoveryError: When a chunk fails in its worker and the
            serial recovery attempt fails as well; the message preserves
            the original worker exception text.
    """
    pool_timer = obs.timer()
    obs.counter_add("pool.tasks", float(len(payloads)))
    if jobs <= 1 or len(payloads) <= 1 or not fork_available():
        return _evaluate_chunk(payloads)

    jobs = min(jobs, len(payloads))
    chunks = split_chunks(payloads, jobs)
    obs.counter_add("pool.chunks", float(len(chunks)))
    obs.gauge_set("pool.queue_depth", float(len(chunks)))
    instrumented = _obs_runtime.ACTIVE
    context = multiprocessing.get_context("fork")
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=context,
        ) as pool:
            worker = (
                _evaluate_chunk_instrumented if instrumented
                else _evaluate_chunk
            )
            futures = [pool.submit(worker, c) for c in chunks]
            records: list[EvalRecord] = []
            for chunk, future in zip(chunks, futures):
                try:
                    result = future.result()
                except Exception as exc:
                    # Worker died or errored. Recover this chunk
                    # serially; keep the worker's own failure text so it
                    # is never silently dropped.
                    obs.counter_add("pool.worker_recoveries")
                    worker_failure = _format_failure(exc)
                    try:
                        records.extend(_evaluate_chunk(chunk))
                    except Exception as retry_exc:
                        raise WorkerRecoveryError(
                            f"chunk of {len(chunk)} evaluation(s) failed "
                            f"in a worker and again during serial "
                            f"recovery; original worker failure: "
                            f"{worker_failure}"
                        ) from retry_exc
                else:
                    if instrumented:
                        chunk_records, delta, spans = result
                        records.extend(chunk_records)
                        obs.absorb(delta)
                        obs.merge(spans, parent_id=obs.current_span_id())
                    else:
                        records.extend(result)
                obs.gauge_set(
                    "pool.queue_depth",
                    float(sum(1 for f in futures if not f.done())),
                )
            pool_timer.gauge_rate("pool.tasks_per_s", len(payloads))
            return records
    except OSError:
        # Pool creation itself failed (sandbox, fd limits, ...).
        obs.counter_add("pool.fallbacks_serial")
        return _evaluate_chunk(payloads)
