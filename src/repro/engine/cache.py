"""Content-hash result cache: in-memory LRU plus optional JSONL store.

The key is a deterministic hash over the *content* of a
:class:`~repro.config.schema.SystemConfig` and the workload, so two
structurally identical configs share a key no matter how they were built
(preset, JSON file, or ``dataclasses.replace`` chain). Overlapping grid
sweeps and repeated studies therefore reuse every point they have in
common.

The optional on-disk store is an append-only JSONL log: loading replays
the log (last write wins), and every new record is appended as it is
computed, which doubles as crash durability for long sweeps.
"""

from __future__ import annotations

import dataclasses
import json
from collections import OrderedDict
from pathlib import Path

from repro import fastpath
from repro.config.loader import system_config_to_dict
from repro.config.schema import SystemConfig
from repro.engine.record import EvalRecord
from repro.perf.workload import Workload

#: Bump when the model or record layout changes meaningfully, so stale
#: on-disk caches from older code are never served.
CACHE_SCHEMA_VERSION = 1


def config_key(config: SystemConfig, workload: Workload | None = None) -> str:
    """Deterministic content-hash key for one (config, workload) pair.

    The same configuration always maps to the same key; changing any
    field — however deeply nested — produces a different key.
    """
    payload = {
        "v": CACHE_SCHEMA_VERSION,
        "config": system_config_to_dict(config),
        "workload": (
            dataclasses.asdict(workload) if workload is not None else None
        ),
    }
    return fastpath.stable_hash(payload)


class EvalCache:
    """LRU cache of :class:`EvalRecord` with an optional JSONL backing file.

    Args:
        max_entries: In-memory capacity; least-recently-used entries are
            evicted (they remain in the on-disk log if one is configured).
        path: Optional JSONL file. Existing entries are loaded eagerly;
            new entries are appended as they are stored.

    Attributes:
        hits: Number of successful lookups.
        misses: Number of failed lookups.
        evictions: In-memory entries dropped by the LRU policy.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        path: str | Path | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._records: OrderedDict[str, EvalRecord] = OrderedDict()
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        """Replay the JSONL log, skipping unreadable lines."""
        assert self.path is not None
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                record = EvalRecord.from_dict(entry["record"])
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
            self._records[key] = record
            self._records.move_to_end(key)
        self._evict()

    def _evict(self) -> None:
        while len(self._records) > self.max_entries:
            self._records.popitem(last=False)
            self.evictions += 1

    def get(self, key: str) -> EvalRecord | None:
        """Look up a record; cached results come back ``from_cache=True``."""
        record = self._records.get(key)
        if record is None:
            self.misses += 1
            return None
        self._records.move_to_end(key)
        self.hits += 1
        return dataclasses.replace(record, from_cache=True)

    def put(self, key: str, record: EvalRecord) -> None:
        """Store a record, appending to the JSONL log for new keys."""
        is_new = key not in self._records
        self._records[key] = dataclasses.replace(record, from_cache=False)
        self._records.move_to_end(key)
        self._evict()
        if is_new and self.path is not None:
            line = json.dumps(
                {"key": key, "record": record.to_dict()}, sort_keys=True,
            )
            with self.path.open("a") as handle:
                handle.write(line + "\n")

    def clear(self) -> None:
        """Drop the in-memory entries and reset the hit/miss counters.

        The on-disk log, if any, is left untouched.
        """
        self._records.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records


#: Process-wide shared cache used when callers don't supply their own, so
#: independent studies in one process (CLI, tests, notebooks) reuse every
#: evaluation they have in common. Pass ``cache=None`` to bypass it.
DEFAULT_CACHE = EvalCache(max_entries=4096)
