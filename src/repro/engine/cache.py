"""Content-hash result cache: in-memory LRU plus optional JSONL store.

The key is a deterministic hash over the *content* of a
:class:`~repro.config.schema.SystemConfig` and the workload, so two
structurally identical configs share a key no matter how they were built
(preset, JSON file, or ``dataclasses.replace`` chain). Overlapping grid
sweeps and repeated studies therefore reuse every point they have in
common.

The optional on-disk store is an append-only JSONL log: loading replays
the log (last write wins), and every new record is appended as it is
computed, which doubles as crash durability for long sweeps.

The cache is safe to share across threads — the serve tier
(:mod:`repro.serve`) keeps **one** process-wide instance that every
concurrent request goes through. In-memory state is guarded by a lock,
and appends are written with ``O_APPEND`` as one whole line per
``write`` syscall, so interleaved writers (threads, or even several
processes sharing one log file) can never splice lines into each other.
The loader is correspondingly corruption-tolerant: a truncated trailing
line (a crash mid-append) or an unreadable line is skipped and counted
in :attr:`EvalCache.corrupt_lines_skipped` rather than poisoning the
load.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro import fastpath
from repro.config.loader import system_config_to_dict
from repro.config.schema import SystemConfig
from repro.engine.record import EvalRecord
from repro.perf.workload import Workload

#: Bump when the model or record layout changes meaningfully, so stale
#: on-disk caches from older code are never served.
CACHE_SCHEMA_VERSION = 1

#: JSON scalar types usable as mapping keys in a hashable payload.
_JSON_KEY_TYPES = (str, int, float, bool, type(None))


def _unserializable_path(node: Any, path: str,
                         seen: set[int]) -> str | None:
    """Locate the first value ``stable_hash`` cannot canonicalize.

    Walks the payload the way :func:`repro.fastpath.stable_hash` will,
    returning a dotted path to the offending value (cycles, non-scalar
    mapping keys, mixed-type key sets, or leaves whose ``str`` fails) —
    or None when the payload is fully serializable.
    """
    if isinstance(node, (dict, list, tuple)):
        if id(node) in seen:
            return f"{path} (circular reference)"
        seen.add(id(node))
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        node = {
            f.name: getattr(node, f.name)
            for f in dataclasses.fields(node)
        }
    if isinstance(node, dict):
        for key in node:
            if not isinstance(key, _JSON_KEY_TYPES):
                return (
                    f"{path}[{key!r}] (mapping key of type "
                    f"{type(key).__name__}; JSON keys must be scalars)"
                )
        try:
            sorted(node)
        except TypeError as exc:
            return f"{path} (unsortable mapping keys: {exc})"
        for key, value in node.items():
            hit = _unserializable_path(value, f"{path}.{key}", seen)
            if hit is not None:
                return hit
        return None
    if isinstance(node, (list, tuple)):
        for i, value in enumerate(node):
            hit = _unserializable_path(value, f"{path}[{i}]", seen)
            if hit is not None:
                return hit
        return None
    try:
        json.dumps(node, default=str)
    except (TypeError, ValueError) as exc:
        return f"{path} (value of type {type(node).__name__}: {exc})"
    return None


def config_key(config: SystemConfig, workload: Workload | None = None) -> str:
    """Deterministic content-hash key for one (config, workload) pair.

    The same configuration always maps to the same key; changing any
    field — however deeply nested — produces a different key.

    Raises:
        ValueError: When the config (or workload) holds a value that
            cannot be content-hashed — the message names the offending
            field path instead of surfacing a deep ``stable_hash``
            traceback.
    """
    payload = {
        "v": CACHE_SCHEMA_VERSION,
        "config": system_config_to_dict(config),
        "workload": (
            dataclasses.asdict(workload) if workload is not None else None
        ),
    }
    try:
        return fastpath.stable_hash(payload)
    except (TypeError, ValueError, RecursionError) as exc:
        label = getattr(config, "name", None)
        label = label if isinstance(label, str) else "<config>"
        where = (
            _unserializable_path(payload["config"], "config", set())
            or _unserializable_path(payload["workload"], "workload", set())
            or "an unidentified field"
        )
        raise ValueError(
            f"configuration {label!r} cannot be content-hashed: "
            f"{where} is not serializable"
        ) from exc


class EvalCache:
    """LRU cache of :class:`EvalRecord` with an optional JSONL backing file.

    Thread-safe: one instance may be shared by concurrent callers (the
    serve tier does exactly that). Lookups/stores take an internal lock;
    log appends are single ``O_APPEND`` writes of whole lines.

    Args:
        max_entries: In-memory capacity; least-recently-used entries are
            evicted (they remain in the on-disk log if one is configured).
        path: Optional JSONL file. Existing entries are loaded eagerly;
            new entries are appended as they are stored.

    Attributes:
        hits: Number of successful lookups.
        misses: Number of failed lookups.
        evictions: In-memory entries dropped by the LRU policy.
        corrupt_lines_skipped: Unreadable/truncated JSONL lines skipped
            by the loader (0 for a healthy log).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        path: str | Path | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        # _evict_locked mutates these with the lock already held by its
        # callers (or from __init__, before the instance escapes).
        self.evictions = 0  # repro: guarded-by[_lock]
        self.corrupt_lines_skipped = 0
        self._lock = threading.Lock()
        self._records: OrderedDict[str, EvalRecord] = (  # repro: guarded-by[_lock]
            OrderedDict()
        )
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        """Replay the JSONL log, skipping (and counting) unreadable lines.

        A line that does not parse — typically the trailing line of a
        log truncated by a crash or a concurrent writer mid-append — is
        skipped and counted, never fatal.
        """
        assert self.path is not None
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                record = EvalRecord.from_dict(entry["record"])
            except (json.JSONDecodeError, KeyError, TypeError):
                self.corrupt_lines_skipped += 1
                continue
            self._records[key] = record
            self._records.move_to_end(key)
        self._evict_locked()

    def _evict_locked(self) -> None:
        """Enforce capacity; caller holds the lock (or is ``__init__``)."""
        while len(self._records) > self.max_entries:
            self._records.popitem(last=False)
            self.evictions += 1

    def get(self, key: str) -> EvalRecord | None:
        """Look up a record; cached results come back ``from_cache=True``."""
        with self._lock:
            record = self._records.get(key)
            if record is None:
                self.misses += 1
                return None
            self._records.move_to_end(key)
            self.hits += 1
        return dataclasses.replace(record, from_cache=True)

    def put(self, key: str, record: EvalRecord) -> None:
        """Store a record, appending to the JSONL log for new keys.

        The append is one ``write`` on an ``O_APPEND`` descriptor, so
        concurrent writers — threads of this process or other processes
        sharing the log — produce interleaved whole lines, never spliced
        partial ones.
        """
        with self._lock:
            is_new = key not in self._records
            self._records[key] = dataclasses.replace(
                record, from_cache=False,
            )
            self._records.move_to_end(key)
            self._evict_locked()
        if is_new and self.path is not None:
            line = json.dumps(
                {"key": key, "record": record.to_dict()}, sort_keys=True,
            )
            payload = (line + "\n").encode("utf-8")
            fd = os.open(
                self.path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)

    def clear(self) -> None:
        """Drop the in-memory entries and reset the hit/miss counters.

        The on-disk log, if any, is left untouched.
        """
        with self._lock:
            self._records.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.corrupt_lines_skipped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records


#: Process-wide shared cache used when callers don't supply their own, so
#: independent studies in one process (CLI, tests, notebooks) reuse every
#: evaluation they have in common. Pass ``cache=None`` to bypass it.
DEFAULT_CACHE = EvalCache(max_entries=4096)
