"""The unit of work the batch engine computes: one config's metrics.

An :class:`EvalRecord` is the flattened, serializable summary of one
:class:`~repro.chip.processor.Processor` evaluation — chip-level area and
power, the per-core breakdown the scaling studies plot, and (when a
workload is supplied) the runtime metrics from the analytical performance
substrate. Records are plain data: picklable for the worker pool and
JSON-round-trippable for the on-disk cache and sweep checkpoints.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.config.schema import SystemConfig
from repro.perf.workload import Workload


@dataclass(frozen=True)
class EvalRecord:
    """Flattened result of evaluating one system configuration.

    Attributes:
        name: The config's chip label.
        key: Content-hash cache key of (config, workload).
        area_mm2: Die area.
        tdp_w: Peak dynamic + leakage power.
        peak_dynamic_w: Chip peak dynamic power.
        leakage_w: Chip leakage at the design temperature.
        core_area_mm2: One core's area.
        core_peak_dynamic_w: One core's peak dynamic power.
        core_leakage_w: One core's leakage.
        runtime_s: Workload run time (None without a workload).
        power_w: Workload runtime power (None without a workload).
        throughput_ips: Committed instructions/s (None without a workload).
        from_cache: True when this record was served from a cache or
            checkpoint rather than computed (excluded from equality).
        backend: Which evaluation path produced the numbers —
            ``"scalar"`` (the exact reference) or ``"numpy"`` (the
            vectorized batch backend, within 1e-9 relative). Provenance
            only: excluded from equality and from :meth:`to_dict`, so
            caches and checkpoints stay backend-agnostic.
    """

    name: str
    key: str
    area_mm2: float
    tdp_w: float
    peak_dynamic_w: float
    leakage_w: float
    core_area_mm2: float
    core_peak_dynamic_w: float
    core_leakage_w: float
    runtime_s: float | None = None
    power_w: float | None = None
    throughput_ips: float | None = None
    from_cache: bool = field(default=False, compare=False)
    backend: str = field(default="scalar", compare=False)

    @property
    def energy_j(self) -> float | None:
        """Workload energy (None without a workload)."""
        if self.runtime_s is None or self.power_w is None:
            return None
        return self.runtime_s * self.power_w

    @property
    def edp(self) -> float | None:
        """Energy-delay product (None without a workload)."""
        energy = self.energy_j
        if energy is None:
            return None
        return energy * self.runtime_s

    @property
    def ed2p(self) -> float | None:
        """Energy-delay^2 product (None without a workload)."""
        edp = self.edp
        if edp is None:
            return None
        return edp * self.runtime_s

    @property
    def leakage_fraction(self) -> float:
        """Leakage share of TDP."""
        return self.leakage_w / self.tdp_w if self.tdp_w else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Serialize for the JSONL cache/checkpoint stores."""
        data = dataclasses.asdict(self)
        del data["from_cache"]
        del data["backend"]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EvalRecord":
        """Rebuild a record written by :meth:`to_dict`."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def evaluate_config(
    config: SystemConfig,
    workload: Workload | None = None,
    key: str = "",
) -> EvalRecord:
    """Model one chip and flatten the result into an :class:`EvalRecord`.

    This is the single evaluation the engine fans out; it runs inside
    worker processes, so it imports nothing process-global and returns
    plain data. The whole evaluation runs under an ``engine.evaluate``
    trace span (the root of the per-evaluation span tree).
    """
    from repro import obs
    from repro.chip import Processor

    with obs.span("engine.evaluate", category="engine", config=config.name):
        processor = Processor(config)
        core_result = processor.core.result(config.clock_hz, None)

        runtime_s = power_w = throughput_ips = None
        if workload is not None:
            from repro.perf import MulticoreSimulator

            with obs.span("engine.workload_sim", category="engine"):
                sim = MulticoreSimulator(processor).run(workload)
                runtime_s = sim.runtime_s
                throughput_ips = sim.throughput_ips
                power_w = processor.report(
                    sim.activity
                ).total_runtime_power

        return EvalRecord(
            name=config.name,
            key=key,
            area_mm2=processor.area * 1e6,
            tdp_w=processor.tdp,
            peak_dynamic_w=processor.peak_dynamic_power,
            leakage_w=processor.leakage_power,
            core_area_mm2=core_result.total_area * 1e6,
            core_peak_dynamic_w=core_result.total_peak_dynamic_power,
            core_leakage_w=core_result.total_leakage_power,
            runtime_s=runtime_s,
            power_w=power_w,
            throughput_ips=throughput_ips,
        )
