"""The single switch guarding every instrumentation site.

Observability is off by default and must stay near-free when off: every
hot call site in the model guards itself with one read of
:data:`ACTIVE` (a module-level bool) before doing any work — no string
formatting, no allocation, no clock read. :func:`enable` /
:func:`disable` flip that flag (and the optional :data:`DETAIL` flag
for high-frequency solver spans) for the whole process; forked workers
inherit the state of the parent at pool-creation time.

This module deliberately imports nothing from the rest of ``repro`` so
any layer — including :mod:`repro.fastpath`, which everything else
imports — can depend on it without cycles.
"""

from __future__ import annotations

#: THE flag. All tracing and metrics collection is dead code while this
#: is False; sites read it directly (``if runtime.ACTIVE:``) so the
#: disabled cost is one module-attribute load and a branch.
ACTIVE: bool = False

#: Secondary flag: record high-frequency *detail* spans (per-solver
#: invocations such as logical-effort chains). Only consulted when
#: :data:`ACTIVE` is already true.
DETAIL: bool = False


def active() -> bool:
    """Whether instrumentation (tracing + metrics) is collecting."""
    return ACTIVE


def detail() -> bool:
    """Whether high-frequency detail spans are being recorded."""
    return ACTIVE and DETAIL


def enable(detail: bool = False) -> None:
    """Turn instrumentation on for this process.

    Args:
        detail: Also record high-frequency solver spans (bigger traces,
            more overhead; useful for deep dives into one evaluation).
    """
    global ACTIVE, DETAIL
    ACTIVE = True
    DETAIL = detail


def disable() -> None:
    """Turn instrumentation off (the default state)."""
    global ACTIVE, DETAIL
    ACTIVE = False
    DETAIL = False
