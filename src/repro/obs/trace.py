"""Hierarchical trace spans with JSONL and Chrome ``trace_event`` export.

A *span* is one timed region of work — building an array, solving a
repeater design point, evaluating a whole chip. Spans nest: entering a
span while another is open records the parent/child edge, so a trace is
a forest whose roots are the top-level operations and whose leaves are
the innermost solver calls.

The API is a context manager and a decorator::

    from repro.obs import span, traced

    with span("array.build", array=spec.name):
        ...

    @traced("engine.evaluate")
    def evaluate_config(...): ...

While :mod:`repro.obs.runtime` is inactive, :func:`span` returns a
shared no-op context manager — the disabled cost is one flag read, one
call, and one branch. Timing uses ``time.perf_counter`` (monotonic,
system-wide on Linux, so spans recorded in forked workers share the
parent's clock base and merge cleanly).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, TypeVar

from repro.obs import runtime

_F = TypeVar("_F", bound=Callable[..., Any])


@dataclass(frozen=True)
class Span:
    """One finished timed region.

    Attributes:
        span_id: Process-unique id (re-numbered when merged across
            processes).
        parent_id: Enclosing span's id, or None for a root span.
        name: What was being done (dotted, e.g. ``circuit.repeater.solve``).
        category: Coarse grouping for trace viewers (``model``,
            ``engine``, ...).
        start_s: ``time.perf_counter`` timestamp at entry.
        duration_s: Wall time from entry to exit.
        pid: OS process id the span was recorded in.
        attrs: Small, JSON-friendly annotations (config name, sizes...).
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_s: float
    duration_s: float
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a span written by :meth:`to_dict`."""
        return cls(
            span_id=int(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None
                else int(data["parent_id"])
            ),
            name=str(data["name"]),
            category=str(data.get("category", "model")),
            start_s=float(data["start_s"]),
            duration_s=float(data["duration_s"]),
            pid=int(data.get("pid", 0)),
            attrs=dict(data.get("attrs", {})),
        )


#: Finished spans of this process, in completion order.
_SPANS: list[Span] = []

#: Monotonic span-id source (per process; forked children inherit the
#: counter state but their spans are re-numbered on merge).
_IDS = itertools.count(1)

_LOCAL = threading.local()
_LOCK = threading.Lock()


def _reinit_after_fork() -> None:
    """Give a forked child a fresh span lock.

    A fork can land while another parent thread holds ``_LOCK``; the
    child would inherit it locked with no owner to release it. Same
    pattern the stdlib ``logging`` module uses for its handler locks.
    """
    global _LOCK
    _LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # not on every platform
    os.register_at_fork(after_in_child=_reinit_after_fork)


def _stack() -> list[int]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


class _NullSpan:
    """Reusable no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL = _NullSpan()


class _LiveSpan:
    """Context manager recording one span on exit."""

    __slots__ = ("name", "category", "attrs", "span_id", "parent_id",
                 "start_s")

    def __init__(self, name: str, category: str,
                 attrs: dict[str, Any]) -> None:
        self.name = name
        self.category = category
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        stack = _stack()
        self.parent_id = stack[-1] if stack else None
        with _LOCK:
            self.span_id = next(_IDS)
        stack.append(self.span_id)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration_s = time.perf_counter() - self.start_s
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = Span(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            category=self.category,
            start_s=self.start_s,
            duration_s=duration_s,
            pid=os.getpid(),
            attrs=self.attrs,
        )
        with _LOCK:
            _SPANS.append(record)
        return False


def span(
    name: str,
    category: str = "model",
    detail: bool = False,
    **attrs: Any,
) -> "_LiveSpan | _NullSpan":
    """Open a trace span; a no-op unless instrumentation is enabled.

    Args:
        name: Span name (dotted component path).
        category: Coarse grouping shown by trace viewers.
        detail: Mark as a high-frequency solver span, recorded only
            when :func:`repro.obs.runtime.enable` was called with
            ``detail=True``.
        **attrs: JSON-friendly annotations attached to the span.
    """
    if not runtime.ACTIVE or (detail and not runtime.DETAIL):
        return _NULL
    return _LiveSpan(name, category, attrs)


def traced(
    name: str | None = None,
    category: str = "model",
    detail: bool = False,
) -> Callable[[_F], _F]:
    """Decorator form of :func:`span` (span per call, named after the
    function unless ``name`` is given)."""

    def decorate(func: _F) -> _F:
        label = name or func.__qualname__

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not runtime.ACTIVE or (detail and not runtime.DETAIL):
                return func(*args, **kwargs)
            with _LiveSpan(label, category, {}):
                return func(*args, **kwargs)

        wrapper.__name__ = func.__name__
        wrapper.__qualname__ = func.__qualname__
        wrapper.__doc__ = func.__doc__
        wrapper.__wrapped__ = func  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


# -- collection management ----------------------------------------------


def spans() -> tuple[Span, ...]:
    """Snapshot of the finished spans recorded so far (this process)."""
    with _LOCK:
        return tuple(_SPANS)


def reset() -> None:
    """Drop all recorded spans (the open-span stack is untouched)."""
    with _LOCK:
        _SPANS.clear()


def current_span_id() -> int | None:
    """Id of the innermost open span on this thread, or None."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def attach(parent_id: int | None) -> Iterator[None]:
    """Adopt ``parent_id`` as this thread's current span parent.

    The span stack is thread-local, so work handed to another thread
    (the serve tier runs evaluations on an executor) would record its
    spans as roots. Capture :func:`current_span_id` before the hop and
    enter ``attach`` on the worker, and the hierarchy survives: spans
    opened inside the block become children of ``parent_id``. A no-op
    when instrumentation is off or ``parent_id`` is None.
    """
    if not runtime.ACTIVE or parent_id is None:
        yield
        return
    stack = _stack()
    stack.append(parent_id)
    try:
        yield
    finally:
        if stack and stack[-1] == parent_id:
            stack.pop()


def merge(
    foreign: Iterable[Span],
    parent_id: int | None = None,
) -> None:
    """Absorb spans recorded in another process (fork-pool workers).

    Foreign span ids are re-numbered from this process's id source so
    they can never collide with local spans; parent/child edges are
    remapped accordingly. Cross-process parent links (a worker span
    whose parent id was inherited from the pre-fork parent process) are
    reattached under ``parent_id`` — typically the local span that was
    open at the join (see :func:`current_span_id`) — or cut to roots
    when no anchor is given.
    """
    foreign = list(foreign)
    with _LOCK:
        mapping = {s.span_id: next(_IDS) for s in foreign}
        for s in foreign:
            if s.parent_id is None:
                new_parent = parent_id
            else:
                new_parent = mapping.get(s.parent_id, parent_id)
            _SPANS.append(Span(
                span_id=mapping[s.span_id],
                parent_id=new_parent,
                name=s.name,
                category=s.category,
                start_s=s.start_s,
                duration_s=s.duration_s,
                pid=s.pid,
                attrs=s.attrs,
            ))


# -- export --------------------------------------------------------------


def write_jsonl(path: str | Path,
                trace: Iterable[Span] | None = None) -> None:
    """Write spans as one JSON object per line."""
    trace = spans() if trace is None else tuple(trace)
    lines = [json.dumps(s.to_dict(), sort_keys=True) for s in trace]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def read_jsonl(path: str | Path) -> tuple[Span, ...]:
    """Load spans written by :func:`write_jsonl`."""
    out = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(Span.from_dict(json.loads(line)))
    return tuple(out)


def write_chrome_trace(path: str | Path,
                       trace: Iterable[Span] | None = None) -> None:
    """Write a Chrome ``trace_event`` file (open in ``chrome://tracing``
    or https://ui.perfetto.dev).

    Spans become complete (``"ph": "X"``) events; timestamps are
    microseconds on the shared monotonic clock, so multi-process traces
    line up on one timeline with one track per pid.
    """
    trace = spans() if trace is None else tuple(trace)
    events = [
        {
            "name": s.name,
            "cat": s.category,
            "ph": "X",
            "ts": s.start_s * 1e6,
            "dur": s.duration_s * 1e6,
            "pid": s.pid,
            "tid": s.pid,
            "args": s.attrs,
        }
        for s in trace
    ]
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload, sort_keys=True))


# -- aggregation ---------------------------------------------------------


@dataclass(frozen=True)
class ProfileEntry:
    """Aggregate timing of all spans sharing one name.

    Attributes:
        count: Number of spans.
        total_s: Summed wall time (inclusive of children).
        self_s: Summed wall time exclusive of child spans — the
            component's own cost; self times sum to the root total
            without double counting.
    """

    count: int
    total_s: float
    self_s: float


def profile(trace: Iterable[Span] | None = None) -> dict[str, ProfileEntry]:
    """Aggregate spans into a per-name time breakdown.

    ``self_s`` subtracts each span's direct children, so summing
    ``self_s`` over all names equals the summed duration of the root
    spans (up to clock resolution) — a breakdown that accounts for the
    traced wall time exactly once.
    """
    trace = spans() if trace is None else tuple(trace)
    child_time: dict[int, float] = {}
    for s in trace:
        if s.parent_id is not None:
            child_time[s.parent_id] = (
                child_time.get(s.parent_id, 0.0) + s.duration_s
            )
    out: dict[str, ProfileEntry] = {}
    for s in trace:
        self_s = max(0.0, s.duration_s - child_time.get(s.span_id, 0.0))
        prev = out.get(s.name)
        if prev is None:
            out[s.name] = ProfileEntry(
                count=1, total_s=s.duration_s, self_s=self_s,
            )
        else:
            out[s.name] = ProfileEntry(
                count=prev.count + 1,
                total_s=prev.total_s + s.duration_s,
                self_s=prev.self_s + self_s,
            )
    return out


def root_total_s(trace: Iterable[Span] | None = None) -> float:
    """Summed duration of the root spans — the traced wall time."""
    trace = spans() if trace is None else tuple(trace)
    return sum(s.duration_s for s in trace if s.parent_id is None)


def format_profile(
    entries: Mapping[str, ProfileEntry],
    wall_s: float | None = None,
    covered_s: float | None = None,
) -> str:
    """Render a :func:`profile` breakdown as an aligned table.

    Args:
        entries: Output of :func:`profile`.
        wall_s: Optional measured wall time; adds a coverage line
            stating how much of it the spans account for.
        covered_s: Traced time to report against ``wall_s`` — pass
            :func:`root_total_s` so parallel runs (where summed self
            times exceed wall clock) report root-span coverage; defaults
            to the summed self times.
    """
    if not entries:
        return "(no spans recorded)"
    width = max(len(name) for name in entries)
    total_self_s = sum(e.self_s for e in entries.values())
    header = (f"{'span':<{width}} {'count':>7} {'total':>10} "
              f"{'self':>10} {'share':>7}")
    lines = [header, "-" * len(header)]
    ordered = sorted(
        entries.items(), key=lambda kv: kv[1].self_s, reverse=True,
    )
    for name, entry in ordered:
        share = entry.self_s / total_self_s if total_self_s else 0.0
        lines.append(
            f"{name:<{width}} {entry.count:>7} "
            f"{entry.total_s * 1e3:>8.1f}ms {entry.self_s * 1e3:>8.1f}ms "
            f"{share:>6.1%}"
        )
    lines.append(
        f"{'(span total)':<{width}} {'':>7} "
        f"{total_self_s * 1e3:>8.1f}ms {total_self_s * 1e3:>8.1f}ms "
        f"{1:>6.0%}"
    )
    if wall_s is not None and wall_s > 0:
        covered = total_self_s if covered_s is None else covered_s
        lines.append(
            f"span total covers {covered / wall_s:.1%} of "
            f"{wall_s * 1e3:.1f}ms wall time"
        )
    return "\n".join(lines)
