"""Process-wide metrics registry: counters, gauges, histograms.

Three metric kinds cover everything the evaluation stack reports:

* **counters** — monotonically increasing event counts (cache hits,
  tasks evaluated, worker recoveries). Merging sums them.
* **gauges** — last-written level samples (queue depth, tasks/sec).
  Merging keeps the later write.
* **histograms** — count/sum/min/max summaries of observed values
  (per-chunk wall times). Merging combines the summaries.

Updates are guarded by :data:`repro.obs.runtime.ACTIVE`, so while
instrumentation is off every update function is one flag read and a
return. *Collectors* are the pull side: modules that already keep their
own counters (:mod:`repro.fastpath` memos) register a callback that is
drained into the snapshot at :func:`snapshot` time — zero overhead on
their hot paths, on or off.

Worker processes forked by the engine accumulate into their own copy of
the registry; :func:`export_state` / :func:`absorb` ship the per-worker
deltas back to the parent at join (see :mod:`repro.engine.pool`).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.obs import runtime

#: Serializes every registry mutation and snapshot copy. The serve tier
#: updates metrics from the event loop, executor threads, and pool
#: joins at once; without this, concurrent ``counter_add`` read-modify-
#: writes lose updates. Held only for dict ops — never while running
#: collectors or user code.
_LOCK = threading.Lock()


def _reinit_after_fork() -> None:
    """Give a forked child a fresh registry lock.

    A fork can land while another parent thread holds ``_LOCK``; the
    child would inherit it locked with no owner to release it. Same
    pattern the stdlib ``logging`` module uses for its handler locks.
    """
    global _LOCK
    _LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # not on every platform
    os.register_at_fork(after_in_child=_reinit_after_fork)


class _HistogramState:  # repro: guarded-by[_LOCK]
    """Mutable count/sum/min/max accumulator for one histogram.

    Instances live in the module-level ``_HISTOGRAMS`` registry; every
    call site mutates or reads them under ``_LOCK`` (declared via the
    class-level guarded-by annotation above).
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def to_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


_COUNTERS: dict[str, float] = {}
_GAUGES: dict[str, float] = {}
_HISTOGRAMS: dict[str, _HistogramState] = {}

#: Pull-side callbacks: name -> fn() returning counter values to fold
#: into snapshots. Survives :func:`reset` (collectors describe *where*
#: numbers live, not the numbers themselves).
_COLLECTORS: dict[str, Callable[[], dict[str, float]]] = {}


def counter_add(name: str, value: float = 1.0) -> None:
    """Increment a counter (no-op while instrumentation is off)."""
    if not runtime.ACTIVE:
        return
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0.0) + value


def gauge_set(name: str, value: float) -> None:
    """Record a level sample (no-op while instrumentation is off)."""
    if not runtime.ACTIVE:
        return
    with _LOCK:
        _GAUGES[name] = value


def observe(name: str, value: float) -> None:
    """Add one observation to a histogram (no-op while off)."""
    if not runtime.ACTIVE:
        return
    with _LOCK:
        state = _HISTOGRAMS.get(name)
        if state is None:
            state = _HISTOGRAMS[name] = _HistogramState()
        state.observe(value)


@dataclass(frozen=True)
class Timer:
    """A started monotonic stopwatch; see :func:`timer`."""

    start_s: float

    def elapsed_s(self) -> float:
        """Seconds since the timer was created."""
        return time.perf_counter() - self.start_s

    def observe(self, name: str) -> None:
        """Record the elapsed time into histogram ``name``."""
        observe(name, self.elapsed_s())

    def gauge_rate(self, name: str, count: float) -> None:
        """Set gauge ``name`` to ``count`` per elapsed second."""
        elapsed_s = self.elapsed_s()
        if elapsed_s > 0:
            gauge_set(name, count / elapsed_s)


def timer() -> Timer:
    """Start a stopwatch for instrumentation timing.

    Keeps the monotonic-clock read inside the observability layer:
    callers time a region without touching ``time.perf_counter``
    themselves, so cached computations stay visibly free of
    nondeterministic sources (the keysound pass treats this module as
    instrumentation plumbing).
    """
    return Timer(start_s=time.perf_counter())


def register_collector(
    name: str, collect: Callable[[], dict[str, float]],
) -> None:
    """Register a pull-side counter source, drained at snapshot time.

    Re-registering a name replaces the previous callback (idempotent
    module imports).
    """
    _COLLECTORS[name] = collect


def reset() -> None:
    """Drop all recorded values; registered collectors are kept."""
    with _LOCK:
        _COUNTERS.clear()
        _GAUGES.clear()
        _HISTOGRAMS.clear()


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable copy of the registry at one point in time.

    Counter values include everything registered collectors report at
    snapshot time (e.g. ``memo.<name>.hits`` from the fast-path memos,
    which count for the life of the process), plus any worker deltas
    absorbed at pool joins.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)

    def counter(self, name: str) -> float:
        """A counter's value (0.0 when never incremented)."""
        return self.counters.get(name, 0.0)

    def hit_rate(self, prefix: str) -> float | None:
        """Hit rate of a ``<prefix>.hits`` / ``<prefix>.misses`` pair,
        or None when the pair never fired."""
        hits = self.counters.get(f"{prefix}.hits")
        misses = self.counters.get(f"{prefix}.misses")
        if hits is None and misses is None:
            return None
        total = (hits or 0.0) + (misses or 0.0)
        return (hits or 0.0) / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


def snapshot(
    extra_counters: Mapping[str, float] | None = None,
) -> MetricsSnapshot:
    """Copy the registry, folding in collectors and optional extras.

    Unlike the update functions this works whether or not
    instrumentation is active — collectors read counters their owners
    maintain anyway, so a snapshot is always meaningful.
    """
    with _LOCK:
        counters = dict(_COUNTERS)
        gauges = dict(_GAUGES)
        histograms = {k: v.to_dict() for k, v in _HISTOGRAMS.items()}
    # Collectors run outside the lock: they take their owners' locks
    # (e.g. each Memo's), and nesting those under _LOCK would pin a
    # lock order on third parties for no benefit.
    for collect in _COLLECTORS.values():
        for name, value in collect().items():
            counters[name] = counters.get(name, 0.0) + value
    if extra_counters:
        for name, value in extra_counters.items():
            counters[name] = counters.get(name, 0.0) + value
    return MetricsSnapshot(
        counters=counters,
        gauges=gauges,
        histograms=histograms,
    )


def export_state() -> MetricsSnapshot:
    """The raw registry (no collectors) — what a worker ships back."""
    with _LOCK:
        return MetricsSnapshot(
            counters=dict(_COUNTERS),
            gauges=dict(_GAUGES),
            histograms={k: v.to_dict() for k, v in _HISTOGRAMS.items()},
        )


def absorb(delta: MetricsSnapshot) -> None:
    """Fold a worker's exported state into this process's registry.

    Counters add; gauges take the worker's sample; histograms combine
    their summaries.
    """
    with _LOCK:
        for name, value in delta.counters.items():
            _COUNTERS[name] = _COUNTERS.get(name, 0.0) + value
        _GAUGES.update(delta.gauges)
        for name, summary in delta.histograms.items():
            state = _HISTOGRAMS.get(name)
            if state is None:
                state = _HISTOGRAMS[name] = _HistogramState()
            count = int(summary.get("count", 0.0))
            if count <= 0:
                continue
            state.count += count
            state.total += summary.get("sum", 0.0)
            state.minimum = min(
                state.minimum, summary.get("min", state.minimum)
            )
            state.maximum = max(
                state.maximum, summary.get("max", state.maximum)
            )


def format_metrics_table(snap: MetricsSnapshot) -> str:
    """Render a snapshot as aligned name/value tables.

    Hit/miss counter pairs get a derived ``... hit rate`` line so cache
    effectiveness reads directly off the table.
    """
    lines: list[str] = []
    if snap.counters:
        width = max(len(n) for n in snap.counters)
        lines.append(f"{'counter':<{width}} {'value':>14}")
        rate_prefixes = []
        for name in sorted(snap.counters):
            lines.append(f"{name:<{width}} {snap.counters[name]:>14.0f}")
            if name.endswith(".hits"):
                rate_prefixes.append(name[: -len(".hits")])
        for prefix in rate_prefixes:
            rate = snap.hit_rate(prefix)
            if rate is not None:
                lines.append(f"{prefix + ' hit rate':<{width}} "
                             f"{rate:>14.1%}")
    if snap.gauges:
        if lines:
            lines.append("")
        width = max(len(n) for n in snap.gauges)
        lines.append(f"{'gauge':<{width}} {'value':>14}")
        for name in sorted(snap.gauges):
            lines.append(f"{name:<{width}} {snap.gauges[name]:>14.3f}")
    if snap.histograms:
        if lines:
            lines.append("")
        width = max(len(n) for n in snap.histograms)
        lines.append(f"{'histogram':<{width}} {'count':>8} {'mean':>12} "
                     f"{'min':>12} {'max':>12}")
        for name in sorted(snap.histograms):
            h = snap.histograms[name]
            count = h.get("count", 0.0)
            mean = h.get("sum", 0.0) / count if count else 0.0
            lines.append(
                f"{name:<{width}} {count:>8.0f} {mean:>12.6f} "
                f"{h.get('min', 0.0):>12.6f} {h.get('max', 0.0):>12.6f}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
