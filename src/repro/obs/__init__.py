"""Observability for the evaluation stack: tracing, metrics, profiling.

``repro.obs`` makes the runtime behavior of the model visible — where a
slow evaluation spends its time, how effective each cache layer is, and
what the worker pool is doing — without perturbing a single reported
number and at near-zero cost while switched off (the default).

Three pieces:

* :mod:`repro.obs.runtime` — the single on/off flag every
  instrumentation site guards itself with.
* :mod:`repro.obs.trace` — hierarchical spans (context manager +
  decorator), exportable as JSONL or a Chrome ``trace_event`` file, and
  aggregatable into per-component profiles.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with a snapshot
  API, fed both push-side (engine pool/cache events) and pull-side
  (fast-path memo collectors).

Typical use::

    from repro import obs

    obs.enable()
    records, metrics = evaluate_many(configs, jobs=4, with_metrics=True)
    print(obs.format_metrics_table(metrics))
    obs.write_chrome_trace("trace.json")

Instrumentation survives the engine's fork pool: workers accumulate
spans and metrics locally and the parent merges them at join.
"""

from __future__ import annotations

from repro.obs import runtime
from repro.obs.metrics import (
    MetricsSnapshot,
    Timer,
    absorb,
    counter_add,
    export_state,
    format_metrics_table,
    gauge_set,
    observe,
    register_collector,
    snapshot,
    timer,
)
from repro.obs.runtime import active, detail, disable, enable
from repro.obs.trace import (
    ProfileEntry,
    Span,
    attach,
    current_span_id,
    format_profile,
    merge,
    profile,
    read_jsonl,
    root_total_s,
    span,
    spans,
    traced,
    write_chrome_trace,
    write_jsonl,
)


def reset() -> None:
    """Drop all recorded spans and metric values (flags untouched)."""
    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    _trace.reset()
    _metrics.reset()


__all__ = [
    "MetricsSnapshot",
    "ProfileEntry",
    "Span",
    "Timer",
    "absorb",
    "active",
    "attach",
    "counter_add",
    "current_span_id",
    "detail",
    "disable",
    "enable",
    "export_state",
    "format_metrics_table",
    "format_profile",
    "gauge_set",
    "merge",
    "observe",
    "profile",
    "read_jsonl",
    "register_collector",
    "reset",
    "root_total_s",
    "runtime",
    "snapshot",
    "span",
    "spans",
    "timer",
    "traced",
    "write_chrome_trace",
    "write_jsonl",
]
