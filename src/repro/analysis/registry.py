"""Unified multi-pass analysis registry.

Four analysis passes ship with the tree — the per-module ``base`` lint
(CP/NUM/UNIT/SPEC rules), the interprocedural ``dimensional`` and
``concurrency`` passes, and the ``keysound`` cache-key soundness pass.
Before this registry each whole-program pass built its own project call
graph from scratch; a ``lint --all`` invocation therefore paid the
collection + fixpoint cost once *per pass*. The registry fixes the
shape:

* :class:`AnalysisPass` is the one pass interface — a name, the rule
  ids it can produce, a ``needs_callgraph`` flag, and a uniform run
  callable ``(targets, shared, disabled) -> {path: [Finding]}``;
* :class:`SharedAnalysis` owns every cross-pass structure — the parsed
  module list, the purity :class:`~repro.analysis.context.ProjectIndex`,
  the :class:`~repro.analysis.dimensional.callgraph.Project` symbol
  tables, and the concurrency :class:`ContextModel`/:class:`StateModel`
  pair (which the keysound pass reuses) — each built **once** per lint
  invocation and handed to every pass that wants it;
* :func:`run_passes` dispatches the enabled passes, optionally in
  parallel threads (``lint --all --jobs``), and reports per-pass
  wall-clock timings for the JSON output.

Thread-safety: shared structures are built eagerly by
:meth:`SharedAnalysis.prepare` before any pass thread starts, so the
pass bodies only ever *read* them concurrently. The one exception is
the dimensional fixpoint, which accumulates inferred facts onto the
shared ``Project``'s fact slots; no other pass reads those slots, so
the mutation is private to that pass by construction.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.context import ModuleSource, ProjectIndex, build_index
from repro.analysis.finding import (
    CONC_RULE_IDS,
    DIM_RULE_IDS,
    KEY_RULE_IDS,
    Finding,
)

#: Uniform pass entry point: findings for the target modules, keyed by
#: target path. ``disabled`` lets a pass skip expensive sub-analyses
#: whose rules the caller turned off.
PassRunner = Callable[
    [list[ModuleSource], "SharedAnalysis", frozenset[str]],
    dict[str, list[Finding]],
]


@dataclass(frozen=True)
class AnalysisPass:
    """Registry metadata + entry point for one analysis pass.

    Attributes:
        name: Stable pass name (``"base"``, ``"dimensional"``, ...),
            surfaced in the JSON ``passes``/``timings`` output and in
            CLI flags.
        rule_ids: Every rule id this pass can produce — the LINT001
            staleness check only judges suppressions of rules whose
            pass actually ran.
        needs_callgraph: Whether the pass consumes the shared
            whole-program call graph (the runner builds it once before
            dispatching any such pass).
        description: One-line summary for docs and ``--help``.
        run: The pass body.
    """

    name: str
    rule_ids: frozenset[str]
    needs_callgraph: bool
    description: str
    run: PassRunner


class SharedAnalysis:
    """Cross-pass structures, each built once per lint invocation.

    Layers are lazy behind one re-entrant lock so a stray out-of-order
    access stays correct, but :meth:`prepare` builds everything the
    enabled passes will need *before* parallel dispatch — pass threads
    then only read.
    """

    def __init__(self, context: Iterable[ModuleSource]) -> None:
        self.context: list[ModuleSource] = list(context)
        self._lock = threading.RLock()
        self._index: ProjectIndex | None = None
        self._project = None
        self._conc_model = None
        self._conc_state = None

    @property
    def sources(self) -> dict[str, str]:
        """Module path -> source text, for comment-grammar scanners."""
        return {module.path: module.source for module in self.context}

    def index(self) -> ProjectIndex:
        """The purity rules' memoization index (base pass)."""
        with self._lock:
            if self._index is None:
                self._index = build_index(self.context)
            return self._index

    def project(self):
        """The whole-program symbol tables (shared call graph)."""
        with self._lock:
            if self._project is None:
                from repro.analysis.dimensional.callgraph import (
                    build_project,
                )

                self._project = build_project(self.context)
            return self._project

    def concurrency_model(self):
        """The solved (ContextModel, StateModel) pair.

        Built on top of :meth:`project`; consumed by both the
        concurrency and the keysound passes.
        """
        with self._lock:
            if self._conc_model is None:
                from repro.analysis.concurrency.contexts import (
                    build_contexts,
                )
                from repro.analysis.concurrency.state import build_state

                self._conc_model = build_contexts(self.project())
                self._conc_state = build_state(
                    self._conc_model, self.sources,
                )
            return self._conc_model, self._conc_state

    def prepare(self, passes: Iterable[AnalysisPass]) -> None:
        """Eagerly build every layer the given passes need."""
        passes = list(passes)
        self.index()
        if any(p.needs_callgraph for p in passes):
            self.project()
        if any(p.name in ("concurrency", "keysound") for p in passes):
            self.concurrency_model()


# -- pass bodies ---------------------------------------------------------


def _run_base(
    targets: list[ModuleSource],
    shared: SharedAnalysis,
    disabled: frozenset[str],
) -> dict[str, list[Finding]]:
    from repro.analysis.rules import CHECKS

    index = shared.index()
    results: dict[str, list[Finding]] = {}
    for module in targets:
        results[module.path] = [
            finding
            for rule_id, check in CHECKS.items()
            if rule_id not in disabled
            for finding in check(module, index)
        ]
    return results


def _run_dimensional(
    targets: list[ModuleSource],
    shared: SharedAnalysis,
    disabled: frozenset[str],
) -> dict[str, list[Finding]]:
    from repro.analysis.dimensional import analyze_dimensions

    return analyze_dimensions(
        targets, shared.context, project=shared.project(),
    )


def _run_concurrency(
    targets: list[ModuleSource],
    shared: SharedAnalysis,
    disabled: frozenset[str],
) -> dict[str, list[Finding]]:
    from repro.analysis.concurrency import analyze_concurrency

    model, state = shared.concurrency_model()
    return analyze_concurrency(
        targets, shared.context, disabled, model=model, state=state,
    )


def _run_keysound(
    targets: list[ModuleSource],
    shared: SharedAnalysis,
    disabled: frozenset[str],
) -> dict[str, list[Finding]]:
    from repro.analysis.keysound import analyze_keysound

    model, state = shared.concurrency_model()
    return analyze_keysound(
        targets, model=model, state=state, sources=shared.sources,
        disabled=disabled,
    )


#: Every registered pass, in canonical run/report order. ``base``
#: always runs; the others are opt-in via CLI flags (``--all`` enables
#: everything).
PASSES: dict[str, AnalysisPass] = {
    "base": AnalysisPass(
        name="base",
        rule_ids=frozenset({
            "CP001", "CP002", "CP003", "NUM001", "NUM002", "NUM003",
            "SPEC001", "UNIT001",
        }),
        needs_callgraph=False,
        description="per-module cache-purity, numeric, units lints",
        run=_run_base,
    ),
    "dimensional": AnalysisPass(
        name="dimensional",
        rule_ids=DIM_RULE_IDS,
        needs_callgraph=True,
        description="whole-program physical-dimension inference",
        run=_run_dimensional,
    ),
    "concurrency": AnalysisPass(
        name="concurrency",
        rule_ids=CONC_RULE_IDS,
        needs_callgraph=True,
        description="whole-program concurrency-safety analysis",
        run=_run_concurrency,
    ),
    "keysound": AnalysisPass(
        name="keysound",
        rule_ids=KEY_RULE_IDS,
        needs_callgraph=True,
        description="whole-program cache-key soundness & determinism",
        run=_run_keysound,
    ),
}

#: Passes whose combined rule set covers everything — a blanket noqa
#: can only be proven stale when all of them ran.
ALL_PASS_NAMES: tuple[str, ...] = tuple(PASSES)


def resolve_passes(
    dimensional: bool = False,
    concurrency: bool = False,
    keysound: bool = False,
) -> tuple[AnalysisPass, ...]:
    """The enabled passes, in canonical order (``base`` always first)."""
    enabled = [PASSES["base"]]
    if dimensional:
        enabled.append(PASSES["dimensional"])
    if concurrency:
        enabled.append(PASSES["concurrency"])
    if keysound:
        enabled.append(PASSES["keysound"])
    return tuple(enabled)


def default_jobs(passes: Iterable[AnalysisPass]) -> int:
    """Default ``--jobs``: one thread per enabled pass, capped at cpus."""
    import os

    count = len(list(passes))
    return max(1, min(count, os.cpu_count() or 1))


def run_passes(
    passes: tuple[AnalysisPass, ...],
    targets: list[ModuleSource],
    shared: SharedAnalysis,
    disabled: frozenset[str],
    jobs: int | None = None,
) -> tuple[dict[str, list[Finding]], tuple[tuple[str, float], ...]]:
    """Run every enabled pass; findings merged per path + timings.

    With ``jobs > 1`` the pass bodies run on a thread pool; the shared
    structures were built by :meth:`SharedAnalysis.prepare` up front, so
    the threads never contend on construction. Timings are wall-clock
    seconds per pass, in pass order.
    """
    shared.prepare(passes)
    jobs = default_jobs(passes) if jobs is None else max(1, jobs)

    def timed(one: AnalysisPass) -> tuple[
        str, float, dict[str, list[Finding]],
    ]:
        started = time.perf_counter()
        findings = one.run(targets, shared, disabled)
        return one.name, time.perf_counter() - started, findings

    if jobs == 1 or len(passes) == 1:
        outcomes = [timed(one) for one in passes]
    else:
        with ThreadPoolExecutor(
            max_workers=min(jobs, len(passes)),
            thread_name_prefix="lint-pass",
        ) as pool:
            outcomes = list(pool.map(timed, passes))

    merged: dict[str, list[Finding]] = {}
    timings: list[tuple[str, float]] = []
    for name, elapsed, findings in outcomes:
        timings.append((name, elapsed))
        for path, found in findings.items():
            merged.setdefault(path, [])
            merged[path] += [
                finding for finding in found
                if finding.rule not in disabled
            ]
    return merged, tuple(timings)
