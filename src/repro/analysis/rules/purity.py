"""Cache-purity rules (CP001-CP003).

PR 2's fast path made correctness rest on three unwritten invariants:
memoized functions must key on hashable/frozen values, must be pure, and
their (shared) results must never be mutated by callers. These rules
make the invariants machine-checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleSource, ProjectIndex, _call_name
from repro.analysis.finding import Finding

#: Type names that are mutable and therefore never valid as memo-key
#: parameter annotations.
MUTABLE_TYPE_NAMES = frozenset({
    "list", "dict", "set", "bytearray",
    "List", "Dict", "Set", "DefaultDict", "OrderedDict", "Counter",
    "MutableMapping", "MutableSequence", "MutableSet",
})

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "sort", "reverse",
    "__setitem__", "__delitem__",
})


def _annotation_names(node: ast.expr) -> Iterator[str]:
    """Every bare name mentioned in an annotation expression."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name):
            yield inner.id
        elif isinstance(inner, ast.Attribute):
            yield inner.attr
        elif isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            # String annotation: parse it so quoted forms are covered too.
            try:
                parsed = ast.parse(inner.value, mode="eval")
            except SyntaxError:
                continue
            yield from _annotation_names(parsed.body)


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node.func) in {"list", "dict", "set", "bytearray"}
    return False


def _memoized_functions(
    module: ModuleSource, index: ProjectIndex
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in index.memoized_defs:
                yield node


def check_cp001(
    module: ModuleSource, index: ProjectIndex
) -> Iterator[Finding]:
    """CP001: memoized functions must take hashable/frozen parameters."""
    for func in _memoized_functions(module, index):
        args = list(func.args.posonlyargs) + list(func.args.args) + list(
            func.args.kwonlyargs
        )
        for arg in args:
            if arg.arg in ("self", "cls") or arg.annotation is None:
                continue
            mutable = set(_annotation_names(arg.annotation)) & (
                MUTABLE_TYPE_NAMES
            )
            if mutable:
                yield Finding(
                    module.path, arg.lineno, arg.col_offset, "CP001",
                    f"parameter {arg.arg!r} of memoized function "
                    f"{func.name!r} is annotated with mutable type "
                    f"{sorted(mutable)[0]!r}; memo keys must be "
                    "hashable/frozen (use tuple / frozenset / a frozen "
                    "dataclass)",
                )
        defaults = list(func.args.defaults) + [
            d for d in func.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield Finding(
                    module.path, default.lineno, default.col_offset,
                    "CP001",
                    f"memoized function {func.name!r} has a mutable "
                    "default argument; memo keys must be hashable/frozen",
                )


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = list(func.args.posonlyargs) + list(func.args.args) + list(
        func.args.kwonlyargs
    )
    names = {a.arg for a in args} - {"cls"}
    if func.args.vararg is not None:
        names.add(func.args.vararg.arg)
    if func.args.kwarg is not None:
        names.add(func.args.kwarg.arg)
    return names


def _root_name(node: ast.expr) -> str | None:
    """Leftmost name of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def check_cp002(
    module: ModuleSource, index: ProjectIndex
) -> Iterator[Finding]:
    """CP002: memoized functions must not write globals or mutate args."""
    for func in _memoized_functions(module, index):
        params = _param_names(func)
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else (
                    "nonlocal"
                )
                yield Finding(
                    module.path, node.lineno, node.col_offset, "CP002",
                    f"memoized function {func.name!r} declares "
                    f"{kind} {', '.join(node.names)}; memoized code "
                    "must be pure",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ):
                        continue
                    root = _root_name(target)
                    if root in params and root != "self":
                        yield Finding(
                            module.path, target.lineno,
                            target.col_offset, "CP002",
                            f"memoized function {func.name!r} writes to "
                            f"its argument {root!r}; memoized code must "
                            "not mutate inputs",
                        )
            elif isinstance(node, ast.Call):
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr not in MUTATING_METHODS:
                    continue
                root = _root_name(node.func.value)
                if root in params and root != "self":
                    yield Finding(
                        module.path, node.lineno, node.col_offset,
                        "CP002",
                        f"memoized function {func.name!r} calls "
                        f"mutating method .{node.func.attr}() on its "
                        f"argument {root!r}",
                    )


class _ReturnMutationVisitor(ast.NodeVisitor):
    """Tracks names bound to memoized results within one scope."""

    def __init__(
        self, module: ModuleSource, memoized: set[str]
    ) -> None:
        self.module = module
        self.memoized = memoized
        self.findings: list[Finding] = []
        self._aliases: set[str] = set()

    # -- scope handling ------------------------------------------------

    def _visit_scope(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Aliases are tracked per function scope, not across scopes."""
        saved = self._aliases
        self._aliases = set()
        self.generic_visit(node)
        self._aliases = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    # -- alias creation / cancellation ---------------------------------

    def _is_memoized_value(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            return _call_name(node.func) in self.memoized
        if isinstance(node, ast.Attribute):
            # cached_property wrappers: ``gate.constants``.
            return node.attr in self.memoized
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_memoized_value(node.value):
                    self._aliases.add(target.id)
                else:
                    self._aliases.discard(target.id)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                self._flag_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if self._is_memoized_value(node.value):
                self._aliases.add(node.target.id)
            else:
                self._aliases.discard(node.target.id)
        elif isinstance(node.target, (ast.Attribute, ast.Subscript)):
            self._flag_target(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, (ast.Attribute, ast.Subscript)):
            self._flag_target(node.target)
        self.generic_visit(node)

    # -- mutation detection --------------------------------------------

    def _flag_target(self, target: ast.expr) -> None:
        """Assignment into an attribute/item of a memoized result."""
        assert isinstance(target, (ast.Attribute, ast.Subscript))
        base = target.value
        root = _root_name(target)
        if self._is_memoized_value(base):
            label = _call_name(base.func) if isinstance(base, ast.Call) \
                else base.attr if isinstance(base, ast.Attribute) else "?"
            self.findings.append(Finding(
                self.module.path, target.lineno, target.col_offset,
                "CP003",
                f"writes into the result of memoized {label!r}; "
                "memoized results are shared process-wide and must be "
                "treated as immutable (copy first)",
            ))
        elif root in self._aliases:
            self.findings.append(Finding(
                self.module.path, target.lineno, target.col_offset,
                "CP003",
                f"writes into {root!r}, which aliases a memoized "
                "result; memoized results are shared process-wide and "
                "must be treated as immutable (copy first)",
            ))

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in MUTATING_METHODS
        ):
            receiver = node.func.value
            root = _root_name(receiver)
            if self._is_memoized_value(receiver):
                self.findings.append(Finding(
                    self.module.path, node.lineno, node.col_offset,
                    "CP003",
                    f"calls mutating method .{node.func.attr}() on the "
                    "result of a memoized callable; memoized results "
                    "are shared process-wide",
                ))
            elif root in self._aliases and isinstance(
                receiver, (ast.Name, ast.Attribute, ast.Subscript)
            ):
                self.findings.append(Finding(
                    self.module.path, node.lineno, node.col_offset,
                    "CP003",
                    f"calls mutating method .{node.func.attr}() on "
                    f"{root!r}, which aliases a memoized result",
                ))
        self.generic_visit(node)


def check_cp003(
    module: ModuleSource, index: ProjectIndex
) -> Iterator[Finding]:
    """CP003: call sites must not mutate memoized results."""
    memoized = set(index.memoized_callables)
    if not memoized:
        return
    visitor = _ReturnMutationVisitor(module, memoized)
    visitor.visit(module.tree)
    yield from visitor.findings
