"""Units and frozen-spec discipline rules (UNIT001, SPEC001).

All internal quantities are SI base units (see :mod:`repro.units`), and
the naming convention that makes that auditable is a canonical short
suffix per unit: ``tdp_w``, ``read_energy_j`` (or an unsuffixed name
documented in its docstring), never ``tdp_watts``. Spec/config
dataclasses feed content-hash cache keys and memoized results, so they
must be ``frozen=True``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleSource, ProjectIndex
from repro.analysis.finding import Finding

#: Verbose / non-canonical unit suffix -> the canonical repro.units one.
SUFFIX_ALIASES: dict[str, str] = {
    "second": "_s", "seconds": "_s", "sec": "_s", "secs": "_s",
    "watt": "_w", "watts": "_w",
    "joule": "_j", "joules": "_j",
    "farad": "_f", "farads": "_f",
    "meter": "_m", "meters": "_m", "metre": "_m", "metres": "_m",
    "sq_m": "_m2", "square_m": "_m2", "square_meters": "_m2",
    "volt": "_v", "volts": "_v",
    "amp": "_a", "amps": "_a", "ampere": "_a", "amperes": "_a",
    "ohms": "_ohm",
    "kelvin": "_k", "kelvins": "_k",
    "hertz": "_hz",
}


def _suffix_violation(name: str) -> tuple[str, str] | None:
    """(alias, canonical) when ``name`` ends in a non-canonical suffix.

    Rate and conversion names are exempt: in ``reads_per_second`` or
    ``celsius_to_kelvin`` the trailing unit is a denominator/target,
    not the unit of the stored quantity.
    """
    for alias, canonical in SUFFIX_ALIASES.items():
        if not name.endswith("_" + alias):
            continue
        stem = name[: -len(alias) - 1]
        if stem in ("per", "to") or stem.endswith(("_per", "_to")):
            continue
        return alias, canonical
    return None


def check_unit001(
    module: ModuleSource, index: ProjectIndex
) -> Iterator[Finding]:
    """UNIT001: quantity names must use canonical unit suffixes."""
    del index

    def finding(name: str, node: ast.AST) -> Iterator[Finding]:
        hit = _suffix_violation(name)
        if hit is not None:
            alias, canonical = hit
            yield Finding(
                module.path, node.lineno, node.col_offset, "UNIT001",
                f"name {name!r} uses non-canonical unit suffix "
                f"'_{alias}'; the repro.units convention is "
                f"{canonical!r}",
            )

    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from finding(node.name, node)
        elif isinstance(node, ast.arg):
            yield from finding(node.arg, node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            yield from finding(node.id, node)


def _dataclass_decorator(node: ast.expr) -> ast.Call | None | bool:
    """Classify a decorator: a dataclass call, a bare dataclass, or no.

    Returns the ``ast.Call`` for ``@dataclass(...)``, ``True`` for a
    bare ``@dataclass`` / ``@dataclasses.dataclass``, ``None``
    otherwise.
    """
    def is_dataclass_ref(ref: ast.expr) -> bool:
        if isinstance(ref, ast.Name):
            return ref.id == "dataclass"
        if isinstance(ref, ast.Attribute):
            return ref.attr == "dataclass"
        return False

    if isinstance(node, ast.Call) and is_dataclass_ref(node.func):
        return node
    if is_dataclass_ref(node):
        return True
    return None


def check_spec001(
    module: ModuleSource, index: ProjectIndex
) -> Iterator[Finding]:
    """SPEC001: dataclasses must be declared ``frozen=True``.

    Spec/config dataclasses flow into ``stable_hash`` cache keys and
    memoized results; a mutable one silently corrupts both. The rule
    covers every dataclass in the tree — internal result carriers
    benefit from the same discipline, and deliberate exceptions carry a
    ``# repro: noqa[SPEC001]``.
    """
    del index
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            kind = _dataclass_decorator(decorator)
            if kind is None:
                continue
            frozen = False
            if isinstance(kind, ast.Call):
                for keyword in kind.keywords:
                    if keyword.arg == "frozen" and isinstance(
                        keyword.value, ast.Constant
                    ):
                        frozen = bool(keyword.value.value)
            if not frozen:
                yield Finding(
                    module.path, decorator.lineno, decorator.col_offset,
                    "SPEC001",
                    f"dataclass {node.name!r} is not frozen=True; "
                    "spec/config/result dataclasses must be immutable "
                    "so cache keys and memoized results stay stable",
                )
