"""Rule registry: maps rule ids to their check functions.

Each check is ``(ModuleSource, ProjectIndex) -> Iterator[Finding]`` and
is pure — all cross-file state lives in the pre-built index.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.analysis.context import ModuleSource, ProjectIndex
from repro.analysis.finding import Finding
from repro.analysis.rules.numeric import (
    check_num001,
    check_num002,
    check_num003,
)
from repro.analysis.rules.purity import (
    check_cp001,
    check_cp002,
    check_cp003,
)
from repro.analysis.rules.units import check_spec001, check_unit001

CheckFunction = Callable[
    [ModuleSource, ProjectIndex], Iterator[Finding]
]

#: Rule id -> check function, in reporting order.
CHECKS: dict[str, CheckFunction] = {
    "CP001": check_cp001,
    "CP002": check_cp002,
    "CP003": check_cp003,
    "NUM001": check_num001,
    "NUM002": check_num002,
    "NUM003": check_num003,
    "SPEC001": check_spec001,
    "UNIT001": check_unit001,
}
