"""Numeric-hygiene rules (NUM001-NUM003).

Analytic power/area/timing models live and die on numerically honest
code: exact float comparisons silently break under reordering or
fast-path refactors, divisions by unvalidated parameters turn into
``ZeroDivisionError`` deep inside a sweep, and mutable defaults leak
state between evaluations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleSource, ProjectIndex, _call_name
from repro.analysis.finding import Finding

#: Callables whose presence (as a statement-level call taking the
#: parameter) counts as validating that parameter — the shared
#: ``_check_width(width)`` idiom.
_DIV_OPS = (ast.Div, ast.FloorDiv, ast.Mod)


def check_num001(
    module: ModuleSource, index: ProjectIndex
) -> Iterator[Finding]:
    """NUM001: no ``==`` / ``!=`` against float literals."""
    del index
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        sides = [node.left, *node.comparators]
        for side in sides:
            if isinstance(side, ast.Constant) and type(side.value) is float:
                yield Finding(
                    module.path, node.lineno, node.col_offset, "NUM001",
                    f"float equality against literal {side.value!r}; "
                    "use math.isclose / pytest.approx, or rewrite the "
                    "sentinel as an ordered comparison",
                )
                break


def _guarded_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str] | None:
    """Parameter names that some statement in ``func`` validates.

    Returns ``None`` when the whole function should be skipped (it
    contains a ``try`` block, i.e. handles its own numeric errors).
    Recognized guards:

    * the name appears in an ``if`` / ``while`` / ``assert`` /
      conditional-expression test (range checks, early returns);
    * the name is an argument of a statement-level call — the
      validation-helper idiom (``_check_width(width)``).
    """
    guarded: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            return None
        tests: list[ast.expr] = []
        if isinstance(node, (ast.If, ast.While, ast.Assert)):
            tests.append(node.test)
        elif isinstance(node, ast.IfExp):
            tests.append(node.test)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            tests.extend(node.value.args)
        for test in tests:
            for name in ast.walk(test):
                if isinstance(name, ast.Name):
                    guarded.add(name.id)
    return guarded


#: Annotation names marking a parameter as non-numeric: ``/`` on these
#: is an overload (pathlib joining), not arithmetic.
_NON_NUMERIC_TYPES = frozenset(
    {"str", "bytes", "Path", "PurePath", "PurePosixPath", "PureWindowsPath"}
)


def _non_numeric_params(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Parameters that are demonstrably not numbers.

    A string/path annotation or a string default means ``/`` involving
    the parameter is path joining or plain nonsense either way — not a
    division that can hit zero.
    """
    skip: set[str] = set()
    positional = list(func.args.posonlyargs) + list(func.args.args)
    pairs = list(zip(reversed(positional), reversed(func.args.defaults)))
    pairs += [
        (a, d)
        for a, d in zip(func.args.kwonlyargs, func.args.kw_defaults)
        if d is not None
    ]
    for arg, default in pairs:
        if isinstance(default, ast.Constant) and isinstance(
            default.value, (str, bytes)
        ):
            skip.add(arg.arg)
    for arg in positional + list(func.args.kwonlyargs):
        ann = arg.annotation
        name = None
        if isinstance(ann, ast.Name):
            name = ann.id
        elif isinstance(ann, ast.Attribute):
            name = ann.attr
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value.split(".")[-1]
        if name in _NON_NUMERIC_TYPES:
            skip.add(arg.arg)
    return skip


def check_num002(
    module: ModuleSource, index: ProjectIndex
) -> Iterator[Finding]:
    """NUM002: divisions by a bare, unvalidated parameter."""
    del index
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = {
            a.arg
            for a in (
                list(func.args.posonlyargs)
                + list(func.args.args)
                + list(func.args.kwonlyargs)
            )
            if a.arg not in ("self", "cls")
        }
        params -= _non_numeric_params(func)
        if not params:
            continue
        guarded = _guarded_names(func)
        if guarded is None:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, _DIV_OPS):
                continue
            right = node.right
            if not isinstance(right, ast.Name):
                continue
            if right.id in params and right.id not in guarded:
                yield Finding(
                    module.path, node.lineno, node.col_offset, "NUM002",
                    f"division by parameter {right.id!r} in "
                    f"{func.name!r} without a validation guard; check "
                    "the parameter (raise ValueError) before dividing",
                )


def check_num003(
    module: ModuleSource, index: ProjectIndex
) -> Iterator[Finding]:
    """NUM003: mutable default argument values."""
    del index
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(func.args.defaults) + [
            d for d in func.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _call_name(default.func)
                in {"list", "dict", "set", "bytearray"}
            )
            if mutable:
                yield Finding(
                    module.path, default.lineno, default.col_offset,
                    "NUM003",
                    f"mutable default argument in {func.name!r}; "
                    "default to None (or a frozen/tuple form) and build "
                    "the mutable value inside the function",
                )
