"""SARIF 2.1.0 output for ``mcpat-repro lint --format sarif``.

The report carries the full rule registry as tool metadata (so code
scanning UIs render rule names and the invariant each protects) and
parses the inference chains embedded in finding messages — the
``... at path.py:line ...`` steps the DIM/CONC/KEY passes produce —
into SARIF ``relatedLocations``, letting a viewer jump through the
whole chain that justified a finding.
"""

from __future__ import annotations

import json
import re

from repro.analysis.finding import Finding, RULE_INFO, RuleInfo
from repro.analysis.runner import LintResult

SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: ``at <path>.py:<line>`` steps inside an inference chain.
_CHAIN_SITE_RE = re.compile(r"at ([\w./\\-]+\.py):(\d+)")

#: Pseudo-rules the driver can emit that are not in the registry.
_PSEUDO_RULES: tuple[RuleInfo, ...] = (
    RuleInfo("SYNTAX", "file-does-not-parse",
             "every linted file must parse"),
    RuleInfo("NOQA", "unknown-suppressed-rule",
             "suppression comments must name known rule ids"),
)


def _rule_entry(info: RuleInfo) -> dict:
    return {
        "id": info.rule_id,
        "name": info.name,
        "shortDescription": {"text": info.name.replace("-", " ")},
        "fullDescription": {"text": info.invariant},
        "defaultConfiguration": {"level": "error"},
    }


def _location(path: str, line: int, col: int = 0,
              text: str | None = None) -> dict:
    entry: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {
                "startLine": max(1, line),
                "startColumn": col + 1,
            },
        },
    }
    if text is not None:
        entry["message"] = {"text": text}
    return entry


def _related_locations(finding: Finding) -> list[dict]:
    """Inference-chain steps as related locations, deduped in order."""
    related: list[dict] = []
    seen: set[tuple[str, int]] = set()
    for match in _CHAIN_SITE_RE.finditer(finding.message):
        path, line = match.group(1), int(match.group(2))
        if (path, line) in seen or (
            path == finding.path and line == finding.line
        ):
            continue
        seen.add((path, line))
        start = max(0, match.start() - 80)
        step = finding.message[start:match.end()]
        related.append(_location(path, line, 0, f"...{step}"))
    return related


def format_sarif(result: LintResult) -> str:
    """Render a lint result as a SARIF 2.1.0 log."""
    rules = list(RULE_INFO) + list(_PSEUDO_RULES)
    index = {info.rule_id: i for i, info in enumerate(rules)}
    results = []
    for finding in result.findings:
        entry: dict = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                _location(finding.path, finding.line, finding.col),
            ],
        }
        if finding.rule in index:
            entry["ruleIndex"] = index[finding.rule]
        related = _related_locations(finding)
        if related:
            entry["relatedLocations"] = related
        results.append(entry)
    log = {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "mcpat-repro-lint",
                    "informationUri":
                        "https://github.com/mcpat-repro",
                    "rules": [_rule_entry(info) for info in rules],
                },
            },
            "properties": {
                "passes": list(result.passes),
                "filesChecked": result.files_checked,
                "suppressed": result.suppressed,
                "timingsMs": {
                    name: round(seconds * 1000.0, 3)
                    for name, seconds in result.timings
                },
            },
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)
