"""Finding and rule metadata shared by every lint rule.

A :class:`Finding` is one violation at one source location. Rules are
registered in :mod:`repro.analysis.rules`; the metadata here (rule id,
human name, protected invariant) is what the CLI and the docs render.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: File the violation is in (as given to the runner).
        line: 1-based line number.
        col: 0-based column offset.
        rule: Rule id, e.g. ``"CP003"``.
        message: Human-readable description with a suggested fix.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form, used by ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class RuleInfo:
    """Registry metadata for one rule.

    Attributes:
        rule_id: Stable identifier used in ``--disable`` and noqa comments.
        name: Short kebab-case name.
        invariant: The model invariant the rule protects.
    """

    rule_id: str
    name: str
    invariant: str


#: Every shipped rule, in family order. The check functions live in
#: :mod:`repro.analysis.rules`; this table is the single source of truth
#: for ids and documentation.
RULE_INFO: tuple[RuleInfo, ...] = (
    RuleInfo(
        "CP001",
        "memoized-unhashable-param",
        "functions memoized via repro.fastpath (or keyed through "
        "stable_hash) must take only hashable/frozen parameter types",
    ),
    RuleInfo(
        "CP002",
        "memoized-impure",
        "memoized functions must be pure: no global/nonlocal writes and "
        "no mutation of their arguments",
    ),
    RuleInfo(
        "CP003",
        "memoized-return-mutation",
        "results of memoized callables are shared process-wide and must "
        "never be mutated at call sites",
    ),
    RuleInfo(
        "NUM001",
        "float-equality",
        "float quantities must not be compared with == / != against "
        "float literals; use math.isclose or pytest.approx",
    ),
    RuleInfo(
        "NUM002",
        "unguarded-division",
        "divisions by a bare parameter in model formulas must be guarded "
        "by validation before use",
    ),
    RuleInfo(
        "NUM003",
        "mutable-default-arg",
        "default argument values must be immutable",
    ),
    RuleInfo(
        "SPEC001",
        "unfrozen-spec-dataclass",
        "spec/config dataclasses must be frozen=True so cache keys and "
        "memoized results stay immutable",
    ),
    RuleInfo(
        "UNIT001",
        "unit-suffix",
        "physical-quantity names must use the canonical repro.units "
        "suffixes (_s, _w, _j, _f, _m, _m2, _v, _a, _ohm, _k, _hz)",
    ),
    RuleInfo(
        "DIM001",
        "dim-incompatible-operands",
        "operands of +, -, comparisons, min/max and math.isclose must "
        "carry the same inferred physical dimension",
    ),
    RuleInfo(
        "DIM002",
        "dim-annotation-mismatch",
        "a value must match the dimension pinned by its dim[...] "
        "annotation or the function's pinned return dimension",
    ),
    RuleInfo(
        "DIM003",
        "dim-suffix-contradiction",
        "a value assigned to a unit-suffixed name must infer to that "
        "suffix's dimension (a _s name must actually hold seconds)",
    ),
    RuleInfo(
        "DIM004",
        "dim-call-boundary",
        "arguments must match pinned parameter/field dimensions, and "
        "math.exp/log/trig and ** exponents must be dimensionless",
    ),
    RuleInfo(
        "DIMNOTE",
        "dim-annotation-malformed",
        "# repro: dim[...] annotation comments must parse (name: unit "
        "entries with units from the seed grammar)",
    ),
    RuleInfo(
        "CONC001",
        "unsynchronized-shared-mutation",
        "module-level or escaping instance state reachable from two or "
        "more thread contexts must only be mutated under a lock (or a "
        "declared '# repro: guarded-by[lockname]' discipline)",
    ),
    RuleInfo(
        "CONC002",
        "blocking-call-in-async",
        "blocking primitives (time.sleep, sync file I/O, subprocess, "
        "Lock.acquire, scalar evaluation) must not be transitively "
        "reachable inside an async def without an executor hop",
    ),
    RuleInfo(
        "CONC003",
        "fork-unsafe-inherited-state",
        "fork-worker entry points must not touch locks, open files, "
        "sockets, or executors inherited from the parent process unless "
        "they are reinitialized via os.register_at_fork(after_in_child)",
    ),
    RuleInfo(
        "CONC004",
        "closure-capture-race",
        "mutable objects captured into executor/pool task closures must "
        "not be mutated on both sides of the submission",
    ),
    RuleInfo(
        "CONCNOTE",
        "guarded-by-annotation-malformed",
        "# repro: guarded-by[lockname] annotation comments must parse, "
        "attach to a state definition, and name a lock in scope",
    ),
    RuleInfo(
        "KEY001",
        "cache-key-missing-read",
        "every value a memoized computation transitively reads (module "
        "globals, closure cells, mutable defaults) must flow into its "
        "cache key, or carry a reasoned '# repro: key-exempt' or "
        "'# repro: keyed-by' declaration — a missed read serves stale "
        "physics",
    ),
    RuleInfo(
        "KEY002",
        "cache-key-overkeyed",
        "a cache key must not hash values the computation never reads: "
        "over-keying silently splits identical computations across "
        "distinct entries and kills hit rates",
    ),
    RuleInfo(
        "DET001",
        "nondeterministic-cached-computation",
        "no nondeterministic source (time, rng, os.environ, file reads, "
        "hash(), iteration order of unsorted sets) may be reachable "
        "from a cached computation or a key-derivation function",
    ),
    RuleInfo(
        "DET002",
        "cached-computation-foreign-mutation",
        "a cached computation must not transitively mutate state "
        "outside its own frame (module globals, shared instance "
        "fields) — generalizing CP003 across calls",
    ),
    RuleInfo(
        "KEYNOTE",
        "key-annotation-malformed",
        "# repro: keyed-by[names] / key-exempt[name: reason] comments "
        "must parse, attach to a memo site or a module-global "
        "definition, and carry a non-empty reason for exemptions",
    ),
    RuleInfo(
        "LINT001",
        "unused-suppression",
        "a '# repro: noqa[...]' comment must suppress at least one "
        "finding of an active pass; stale suppressions are removed, not "
        "accumulated",
    ),
    RuleInfo(
        "IO001",
        "unreadable-source-file",
        "files the linter is asked to check must be readable; an "
        "unreadable file is reported, never silently skipped",
    ),
)

#: Rules produced by the interprocedural passes (``lint --dimensional``
#: / ``--concurrency`` / ``--keysound``) or the driver itself rather
#: than by a per-module check function in :mod:`repro.analysis.rules`.
DRIVER_RULE_IDS: frozenset[str] = frozenset({
    "DIM001", "DIM002", "DIM003", "DIM004", "DIMNOTE",
    "CONC001", "CONC002", "CONC003", "CONC004", "CONCNOTE",
    "KEY001", "KEY002", "DET001", "DET002", "KEYNOTE",
    "LINT001", "IO001",
})

#: Rule ids per analysis pass, for the LINT001 unused-suppression check
#: (a ``noqa[DIM003]`` is only "unused" when the dimensional pass
#: actually ran) and for the merged JSON report.
DIM_RULE_IDS: frozenset[str] = frozenset({
    "DIM001", "DIM002", "DIM003", "DIM004", "DIMNOTE",
})
CONC_RULE_IDS: frozenset[str] = frozenset({
    "CONC001", "CONC002", "CONC003", "CONC004", "CONCNOTE",
})
KEY_RULE_IDS: frozenset[str] = frozenset({
    "KEY001", "KEY002", "DET001", "DET002", "KEYNOTE",
})

#: Rule id -> metadata.
RULES: dict[str, RuleInfo] = {info.rule_id: info for info in RULE_INFO}

#: All known rule ids, for --disable / noqa validation.
ALL_RULE_IDS: frozenset[str] = frozenset(RULES)
