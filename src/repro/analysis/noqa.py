"""Inline suppression comments: ``# repro: noqa[RULE1,RULE2]``.

A finding is suppressed when the line it is reported on carries a
matching suppression comment. Two forms exist:

* ``# repro: noqa`` — suppress every rule on that line (blanket form;
  prefer the targeted form so the suppression documents *which*
  invariant is being waived).
* ``# repro: noqa[CP003]`` / ``# repro: noqa[CP003,NUM001]`` — suppress
  only the listed rules.

Suppression comments are found with :mod:`tokenize`, so mentions inside
strings and docstrings are ignored. Unknown rule ids inside the
brackets are reported by the runner as ``NOQA`` findings rather than
silently ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class Suppressions:
    """Per-file suppression table built from the source text.

    Attributes:
        blanket_lines: Lines carrying a bare ``# repro: noqa``.
        rule_lines: Line -> set of rule ids suppressed on that line.
        unknown: (line, token) pairs for unrecognized rule ids.
    """

    blanket_lines: set[int] = field(default_factory=set)
    rule_lines: dict[int, set[str]] = field(default_factory=dict)
    unknown: list[tuple[int, str]] = field(default_factory=list)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is suppressed on 1-based ``line``."""
        if line in self.blanket_lines:
            return True
        return rule in self.rule_lines.get(line, set())


def parse_suppressions(
    source: str, known_rules: frozenset[str]
) -> Suppressions:
    """Scan ``source`` for suppression comments.

    Args:
        source: Full module text.
        known_rules: Valid rule ids; anything else is recorded in
            :attr:`Suppressions.unknown`.
    """
    table = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable file: the runner reports a SYNTAX finding instead.
        return table
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(tok.string)
        if match is None:
            continue
        lineno = tok.start[0]
        raw = match.group("rules")
        if raw is None:
            table.blanket_lines.add(lineno)
            continue
        rules = table.rule_lines.setdefault(lineno, set())
        for token in raw.split(","):
            token = token.strip()
            if not token:
                continue
            if token.upper() in known_rules:
                rules.add(token.upper())
            else:
                table.unknown.append((lineno, token))
    return table
