"""Lint driver: file discovery, shared pre-passes, pass dispatch, output.

The driver parses every target file *plus* the installed ``repro``
package, builds the cross-pass structures once through
:class:`~repro.analysis.registry.SharedAnalysis` (purity index, project
call graph, concurrency model), dispatches the enabled analysis passes
(optionally in parallel — ``lint --all --jobs``), and filters the merged
findings through the inline-suppression table.

Two pseudo-rules can appear in output and are never suppressible:
``SYNTAX`` (a target file failed to parse) and ``NOQA`` (a suppression
comment names an unknown rule id).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.context import ModuleSource, ProjectIndex
from repro.analysis.finding import ALL_RULE_IDS, Finding
from repro.analysis.noqa import parse_suppressions
from repro.analysis.registry import (
    PASSES,
    SharedAnalysis,
    resolve_passes,
    run_passes,
)

#: JSON output schema version (``--format json``). Version 2 added the
#: ``passes`` list and the merged-pass findings (CONC/LINT rules);
#: version 3 added per-pass ``timings`` and the keysound pass
#: (KEY/DET rules).
JSON_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: Surviving findings, sorted by location.
        suppressed: Count of findings silenced by noqa comments.
        files_checked: Number of target files analyzed.
        passes: Analysis passes that ran (``base`` always; plus
            ``dimensional``, ``concurrency``, and/or ``keysound``).
        timings: Wall-clock seconds per pass, in pass order.
    """

    findings: tuple[Finding, ...] = ()
    suppressed: int = 0
    files_checked: int = 0
    passes: tuple[str, ...] = ("base",)
    timings: tuple[tuple[str, float], ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the run is clean."""
        return not self.findings


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.parts
                if "__pycache__" in parts or any(
                    part.startswith(".") for part in parts
                ):
                    continue
                files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(
                f"{path} is neither a directory nor a .py file"
            )
    return sorted(files)


def _parse_module(path: Path) -> ModuleSource | Finding:
    try:
        source = path.read_text()
    except FileNotFoundError:
        raise  # a missing target is a usage error, not a finding
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(
            str(path), 1, 0, "IO001",
            f"file could not be read: {exc}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            str(path), exc.lineno or 1, (exc.offset or 1) - 1, "SYNTAX",
            f"file does not parse: {exc.msg}",
        )
    return ModuleSource(path=str(path), source=source, tree=tree)


def _package_modules() -> list[ModuleSource]:
    """The installed ``repro`` package, for index context."""
    package_dir = Path(__file__).resolve().parents[1]
    modules = []
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        parsed = _parse_module(path)
        if isinstance(parsed, ModuleSource):
            modules.append(parsed)
    return modules


def validate_disable(disable: Iterable[str]) -> frozenset[str]:
    """Normalize and validate ``--disable`` rule ids."""
    normalized = {rule.strip().upper() for rule in disable if rule.strip()}
    unknown = normalized - ALL_RULE_IDS
    if unknown:
        known = ", ".join(sorted(ALL_RULE_IDS))
        raise ValueError(
            f"unknown rule id(s) {sorted(unknown)}; known rules: {known}"
        )
    return frozenset(normalized)


def _active_rules(passes: tuple[str, ...]) -> frozenset[str]:
    """Rule ids the given passes can produce (for LINT001 staleness)."""
    active = {"LINT001", "IO001", "SYNTAX", "NOQA"}
    for name in passes:
        registered = PASSES.get(name)
        if registered is not None:
            active |= registered.rule_ids
    return frozenset(active)


def _filter_findings(
    targets: list[ModuleSource],
    parse_failures: list[Finding],
    disable: frozenset[str],
    extra: dict[str, list[Finding]],
    passes: tuple[str, ...] = ("base",),
    timings: tuple[tuple[str, float], ...] = (),
) -> LintResult:
    """Apply noqa suppression + LINT001 hygiene to the merged findings."""
    findings: list[Finding] = list(parse_failures)
    suppressed = 0
    active = _active_rules(passes)
    full_run = all(name in passes for name in PASSES)
    for module in targets:
        suppressions = parse_suppressions(module.source, ALL_RULE_IDS)
        for lineno, token in suppressions.unknown:
            findings.append(Finding(
                module.path, lineno, 0, "NOQA",
                f"suppression names unknown rule {token!r}",
            ))
        module_findings = [
            finding for finding in extra.get(module.path, [])
            if finding.rule not in disable
        ]
        used_rules: set[tuple[int, str]] = set()
        used_blanket: set[int] = set()
        for finding in module_findings:
            if finding.line in suppressions.blanket_lines:
                suppressed += 1
                used_blanket.add(finding.line)
            elif finding.rule in suppressions.rule_lines.get(
                finding.line, set()
            ):
                suppressed += 1
                used_rules.add((finding.line, finding.rule))
            else:
                findings.append(finding)
        if "LINT001" in disable:
            continue
        # Noqa hygiene: a suppression that silences nothing any active
        # pass produces is stale. Rules of passes that did not run are
        # left alone, as is LINT001 itself (suppressing the hygiene
        # check is always an explicit waiver, never "unused").
        stale: list[tuple[Finding, bool]] = []
        for line, rules in sorted(suppressions.rule_lines.items()):
            for rule in sorted(rules):
                if rule == "LINT001" or rule not in active:
                    continue
                if (line, rule) not in used_rules:
                    stale.append((Finding(
                        module.path, line, 0, "LINT001",
                        f"suppression '# repro: noqa[{rule}]' silences "
                        f"no {rule} finding on this line; remove it",
                    ), False))
        if full_run:
            # Only a full run (every registered pass) can prove a
            # blanket noqa dead.
            for line in sorted(suppressions.blanket_lines):
                if line not in used_blanket:
                    stale.append((Finding(
                        module.path, line, 0, "LINT001",
                        "blanket suppression '# repro: noqa' silences "
                        "no finding on this line; remove it",
                    ), True))
        for finding, about_blanket in stale:
            # A stale-blanket report must not be silenced by the very
            # blanket being flagged — only a targeted LINT001 waiver
            # (or, for targeted staleness, any other suppression on the
            # line) counts.
            targeted = "LINT001" in suppressions.rule_lines.get(
                finding.line, set(),
            )
            via_blanket = not about_blanket and \
                finding.line in suppressions.blanket_lines
            if targeted or via_blanket:
                suppressed += 1
            else:
                findings.append(finding)
    return LintResult(
        findings=tuple(sorted(findings)),
        suppressed=suppressed,
        files_checked=len(targets) + len(parse_failures),
        passes=passes,
        timings=timings,
    )


def lint_paths(
    paths: Sequence[str | Path],
    disable: Iterable[str] = (),
    dimensional: bool = False,
    concurrency: bool = False,
    keysound: bool = False,
    jobs: int | None = None,
) -> LintResult:
    """Lint files/directories; the main entry point behind the CLI.

    The ``base`` pass always runs. ``dimensional=True`` adds the
    interprocedural dimension-inference pass (DIM rules),
    ``concurrency=True`` the concurrency-safety pass (CONC rules), and
    ``keysound=True`` the cache-key soundness pass (KEY/DET rules); all
    whole-program passes share one call graph built once per
    invocation. Enabling everything is ``mcpat-repro lint --all``;
    ``jobs`` runs the enabled passes on that many threads (default: one
    per pass, capped at the cpu count).
    """
    disabled = validate_disable(disable)
    files = iter_python_files(paths)
    targets: list[ModuleSource] = []
    parse_failures: list[Finding] = []
    for path in files:
        parsed = _parse_module(path)
        if isinstance(parsed, Finding):
            parse_failures.append(parsed)
        else:
            targets.append(parsed)
    indexed: dict[str, ModuleSource] = {
        module.path: module for module in _package_modules()
    }
    for module in targets:
        indexed[str(Path(module.path).resolve())] = module
    shared = SharedAnalysis(indexed.values())
    passes = resolve_passes(dimensional, concurrency, keysound)
    extra, timings = run_passes(passes, targets, shared, disabled, jobs)
    return _filter_findings(
        targets, parse_failures, disabled, extra,
        tuple(one.name for one in passes), timings,
    )


def lint_source(
    source: str,
    path: str = "<snippet>",
    disable: Iterable[str] = (),
    index: ProjectIndex | None = None,
    dimensional: bool = False,
    concurrency: bool = False,
    keysound: bool = False,
) -> LintResult:
    """Lint one in-memory module (test fixtures, tooling).

    The snippet is self-indexing: its own memoization facts are
    collected, but the wider package is not consulted. The
    interprocedural passes (``dimensional`` / ``concurrency`` /
    ``keysound``) run over the snippet alone; cross-module facts still
    resolve through their seed tables.
    """
    disabled = validate_disable(disable)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        failure = Finding(
            path, exc.lineno or 1, (exc.offset or 1) - 1, "SYNTAX",
            f"file does not parse: {exc.msg}",
        )
        return _filter_findings([], [failure], disabled, {})
    module = ModuleSource(path=path, source=source, tree=tree)
    shared = SharedAnalysis([module])
    if index is not None:
        shared._index = index
    passes = resolve_passes(dimensional, concurrency, keysound)
    extra, timings = run_passes(passes, [module], shared, disabled)
    return _filter_findings(
        [module], [], disabled, extra,
        tuple(one.name for one in passes), timings,
    )


def format_text(result: LintResult) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        for f in result.findings
    ]
    summary = (
        f"{len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, see tests)."""
    by_rule: dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "passes": list(result.passes),
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "counts": dict(sorted(by_rule.items())),
        "timings_ms": {
            name: round(seconds * 1000.0, 3)
            for name, seconds in result.timings
        },
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
