"""Lint driver: file discovery, index pre-pass, rule dispatch, output.

The driver is two passes. Pass one parses every target file *plus* the
installed ``repro`` package and builds the :class:`ProjectIndex`, so a
call site in ``tests/`` mutating the return of the memoized
``build_array`` is flagged even though the memo lives in ``src/``. Pass
two runs each enabled rule over each target module and filters the
findings through the inline-suppression table.

Two pseudo-rules can appear in output and are never suppressible:
``SYNTAX`` (a target file failed to parse) and ``NOQA`` (a suppression
comment names an unknown rule id).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.context import ModuleSource, ProjectIndex, build_index
from repro.analysis.finding import (
    ALL_RULE_IDS,
    CONC_RULE_IDS,
    DIM_RULE_IDS,
    Finding,
)
from repro.analysis.noqa import parse_suppressions
from repro.analysis.rules import CHECKS

#: JSON output schema version (``--format json``). Version 2 added the
#: ``passes`` list and the merged-pass findings (CONC/LINT rules).
JSON_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: Surviving findings, sorted by location.
        suppressed: Count of findings silenced by noqa comments.
        files_checked: Number of target files analyzed.
        passes: Analysis passes that ran (``base`` always; plus
            ``dimensional`` and/or ``concurrency``).
    """

    findings: tuple[Finding, ...] = ()
    suppressed: int = 0
    files_checked: int = 0
    passes: tuple[str, ...] = ("base",)

    @property
    def ok(self) -> bool:
        """Whether the run is clean."""
        return not self.findings


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.parts
                if "__pycache__" in parts or any(
                    part.startswith(".") for part in parts
                ):
                    continue
                files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(
                f"{path} is neither a directory nor a .py file"
            )
    return sorted(files)


def _parse_module(path: Path) -> ModuleSource | Finding:
    try:
        source = path.read_text()
    except FileNotFoundError:
        raise  # a missing target is a usage error, not a finding
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(
            str(path), 1, 0, "IO001",
            f"file could not be read: {exc}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            str(path), exc.lineno or 1, (exc.offset or 1) - 1, "SYNTAX",
            f"file does not parse: {exc.msg}",
        )
    return ModuleSource(path=str(path), source=source, tree=tree)


def _package_modules() -> list[ModuleSource]:
    """The installed ``repro`` package, for index context."""
    package_dir = Path(__file__).resolve().parents[1]
    modules = []
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        parsed = _parse_module(path)
        if isinstance(parsed, ModuleSource):
            modules.append(parsed)
    return modules


def validate_disable(disable: Iterable[str]) -> frozenset[str]:
    """Normalize and validate ``--disable`` rule ids."""
    normalized = {rule.strip().upper() for rule in disable if rule.strip()}
    unknown = normalized - ALL_RULE_IDS
    if unknown:
        known = ", ".join(sorted(ALL_RULE_IDS))
        raise ValueError(
            f"unknown rule id(s) {sorted(unknown)}; known rules: {known}"
        )
    return frozenset(normalized)


def _active_rules(passes: tuple[str, ...]) -> frozenset[str]:
    """Rule ids the given passes can produce (for LINT001 staleness)."""
    active = set(ALL_RULE_IDS)
    if "dimensional" not in passes:
        active -= DIM_RULE_IDS
    if "concurrency" not in passes:
        active -= CONC_RULE_IDS
    return frozenset(active)


def _lint_modules(
    targets: list[ModuleSource],
    parse_failures: list[Finding],
    disable: frozenset[str],
    index: ProjectIndex,
    extra: dict[str, list[Finding]] | None = None,
    passes: tuple[str, ...] = ("base",),
) -> LintResult:
    findings: list[Finding] = list(parse_failures)
    suppressed = 0
    extra = extra or {}
    active = _active_rules(passes)
    for module in targets:
        suppressions = parse_suppressions(module.source, ALL_RULE_IDS)
        for lineno, token in suppressions.unknown:
            findings.append(Finding(
                module.path, lineno, 0, "NOQA",
                f"suppression names unknown rule {token!r}",
            ))
        module_findings = [
            finding
            for rule_id, check in CHECKS.items()
            if rule_id not in disable
            for finding in check(module, index)
        ]
        module_findings += [
            finding for finding in extra.get(module.path, [])
            if finding.rule not in disable
        ]
        used_rules: set[tuple[int, str]] = set()
        used_blanket: set[int] = set()
        for finding in module_findings:
            if finding.line in suppressions.blanket_lines:
                suppressed += 1
                used_blanket.add(finding.line)
            elif finding.rule in suppressions.rule_lines.get(
                finding.line, set()
            ):
                suppressed += 1
                used_rules.add((finding.line, finding.rule))
            else:
                findings.append(finding)
        if "LINT001" in disable:
            continue
        # Noqa hygiene: a suppression that silences nothing any active
        # pass produces is stale. Rules of passes that did not run are
        # left alone, as is LINT001 itself (suppressing the hygiene
        # check is always an explicit waiver, never "unused").
        stale: list[tuple[Finding, bool]] = []
        for line, rules in sorted(suppressions.rule_lines.items()):
            for rule in sorted(rules):
                if rule == "LINT001" or rule not in active:
                    continue
                if (line, rule) not in used_rules:
                    stale.append((Finding(
                        module.path, line, 0, "LINT001",
                        f"suppression '# repro: noqa[{rule}]' silences "
                        f"no {rule} finding on this line; remove it",
                    ), False))
        if "dimensional" in passes and "concurrency" in passes:
            # Only a full run can prove a blanket noqa dead.
            for line in sorted(suppressions.blanket_lines):
                if line not in used_blanket:
                    stale.append((Finding(
                        module.path, line, 0, "LINT001",
                        "blanket suppression '# repro: noqa' silences "
                        "no finding on this line; remove it",
                    ), True))
        for finding, about_blanket in stale:
            # A stale-blanket report must not be silenced by the very
            # blanket being flagged — only a targeted LINT001 waiver
            # (or, for targeted staleness, any other suppression on the
            # line) counts.
            targeted = "LINT001" in suppressions.rule_lines.get(
                finding.line, set(),
            )
            via_blanket = not about_blanket and \
                finding.line in suppressions.blanket_lines
            if targeted or via_blanket:
                suppressed += 1
            else:
                findings.append(finding)
    return LintResult(
        findings=tuple(sorted(findings)),
        suppressed=suppressed,
        files_checked=len(targets) + len(parse_failures),
        passes=passes,
    )


def _merge_extra(
    extra: dict[str, list[Finding]] | None,
    more: dict[str, list[Finding]],
) -> dict[str, list[Finding]]:
    merged = dict(extra or {})
    for path, findings in more.items():
        merged.setdefault(path, [])
        merged[path] = merged[path] + findings
    return merged


def lint_paths(
    paths: Sequence[str | Path],
    disable: Iterable[str] = (),
    dimensional: bool = False,
    concurrency: bool = False,
) -> LintResult:
    """Lint files/directories; the main entry point behind the CLI.

    With ``dimensional=True`` the interprocedural dimension-inference
    pass also runs: the call graph spans every indexed module (targets
    plus the installed package) and DIM/DIMNOTE findings are reported
    for the targets. With ``concurrency=True`` the concurrency-safety
    pass runs over the same call graph and reports CONC/CONCNOTE
    findings. Enabling both is ``mcpat-repro lint --all``.
    """
    disabled = validate_disable(disable)
    files = iter_python_files(paths)
    targets: list[ModuleSource] = []
    parse_failures: list[Finding] = []
    for path in files:
        parsed = _parse_module(path)
        if isinstance(parsed, Finding):
            parse_failures.append(parsed)
        else:
            targets.append(parsed)
    indexed: dict[str, ModuleSource] = {
        module.path: module for module in _package_modules()
    }
    for module in targets:
        indexed[str(Path(module.path).resolve())] = module
    context = list(indexed.values())
    index = build_index(context)
    extra: dict[str, list[Finding]] | None = None
    passes: tuple[str, ...] = ("base",)
    if dimensional:
        from repro.analysis.dimensional import analyze_dimensions

        extra = _merge_extra(extra, analyze_dimensions(targets, context))
        passes = passes + ("dimensional",)
    if concurrency:
        from repro.analysis.concurrency import analyze_concurrency

        extra = _merge_extra(
            extra, analyze_concurrency(targets, context, disabled),
        )
        passes = passes + ("concurrency",)
    return _lint_modules(
        targets, parse_failures, disabled, index, extra, passes,
    )


def lint_source(
    source: str,
    path: str = "<snippet>",
    disable: Iterable[str] = (),
    index: ProjectIndex | None = None,
    dimensional: bool = False,
    concurrency: bool = False,
) -> LintResult:
    """Lint one in-memory module (test fixtures, tooling).

    When ``index`` is omitted the snippet is self-indexing: its own
    memoization facts are collected, but the wider package is not
    consulted. ``dimensional=True`` runs the dimension-inference pass
    over the snippet alone (cross-module facts still resolve through
    the :mod:`repro.units` seed table); ``concurrency=True`` does the
    same for the concurrency-safety pass.
    """
    disabled = validate_disable(disable)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        failure = Finding(
            path, exc.lineno or 1, (exc.offset or 1) - 1, "SYNTAX",
            f"file does not parse: {exc.msg}",
        )
        return _lint_modules([], [failure], disabled, ProjectIndex())
    module = ModuleSource(path=path, source=source, tree=tree)
    if index is None:
        index = build_index([module])
    extra: dict[str, list[Finding]] | None = None
    passes: tuple[str, ...] = ("base",)
    if dimensional:
        from repro.analysis.dimensional import analyze_dimensions

        extra = _merge_extra(extra, analyze_dimensions([module], [module]))
        passes = passes + ("dimensional",)
    if concurrency:
        from repro.analysis.concurrency import analyze_concurrency

        extra = _merge_extra(
            extra, analyze_concurrency([module], [module], disabled),
        )
        passes = passes + ("concurrency",)
    return _lint_modules([module], [], disabled, index, extra, passes)


def format_text(result: LintResult) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        for f in result.findings
    ]
    summary = (
        f"{len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, see tests)."""
    by_rule: dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "passes": list(result.passes),
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "counts": dict(sorted(by_rule.items())),
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
