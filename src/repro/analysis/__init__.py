"""Model-invariant static analysis for the reproduction tree.

``repro.analysis`` is a stdlib-``ast`` lint suite with three rule
families protecting the invariants the fast path (PR 2) and the
content-hash cache (PR 1) rely on:

* **cache purity** (CP001-CP003) — memoized functions key on
  hashable/frozen inputs, stay pure, and their shared results are never
  mutated at call sites;
* **numeric hygiene** (NUM001-NUM003) — no float-literal equality, no
  unguarded divisions by parameters, no mutable default arguments;
* **units / frozen-spec discipline** (SPEC001, UNIT001) — canonical
  physical-unit name suffixes and ``frozen=True`` spec dataclasses.

Run it as ``mcpat-repro lint src/ tests/`` or through
:func:`lint_paths` / :func:`lint_source`. Suppress a deliberate
violation inline with ``# repro: noqa[RULE]``.
"""

from repro.analysis.finding import ALL_RULE_IDS, Finding, RULE_INFO, RULES
from repro.analysis.runner import (
    LintResult,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)

__all__ = [
    "ALL_RULE_IDS",
    "Finding",
    "LintResult",
    "RULES",
    "RULE_INFO",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_source",
]
