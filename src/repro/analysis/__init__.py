"""Model-invariant static analysis for the reproduction tree.

``repro.analysis`` is a stdlib-``ast`` lint suite with three rule
families protecting the invariants the fast path (PR 2) and the
content-hash cache (PR 1) rely on:

* **cache purity** (CP001-CP003) — memoized functions key on
  hashable/frozen inputs, stay pure, and their shared results are never
  mutated at call sites;
* **numeric hygiene** (NUM001-NUM003) — no float-literal equality, no
  unguarded divisions by parameters, no mutable default arguments;
* **units / frozen-spec discipline** (SPEC001, UNIT001) — canonical
  physical-unit name suffixes and ``frozen=True`` spec dataclasses.

Run it as ``mcpat-repro lint src/ tests/`` or through
:func:`lint_paths` / :func:`lint_source`. Suppress a deliberate
violation inline with ``# repro: noqa[RULE]``.
"""

from repro.analysis.finding import ALL_RULE_IDS, Finding, RULE_INFO, RULES
from repro.analysis.registry import (
    ALL_PASS_NAMES,
    AnalysisPass,
    PASSES,
    SharedAnalysis,
)
from repro.analysis.runner import (
    LintResult,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)
from repro.analysis.sarif import format_sarif

__all__ = [
    "ALL_PASS_NAMES",
    "ALL_RULE_IDS",
    "AnalysisPass",
    "Finding",
    "LintResult",
    "PASSES",
    "RULES",
    "RULE_INFO",
    "SharedAnalysis",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_paths",
    "lint_source",
]
