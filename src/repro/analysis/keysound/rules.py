"""The KEY/DET rule implementations.

Each rule combines the memoization sites from :mod:`.sites` with the
transitive effects from :mod:`.effects` and the declarations from
:mod:`.comments`; messages carry the full read-set inference chain in
the DIM/CONC style.
"""

from __future__ import annotations

from repro.analysis.concurrency.state import StateKey, StateModel
from repro.analysis.finding import Finding
from repro.analysis.keysound.effects import EffectModel, Fact
from repro.analysis.keysound.sites import MemoSite

#: Longest chain fragment embedded in a message (same cap as DIM/CONC).
_CHAIN_LIMIT = 200

#: Functions whose output *is* a cache key: nondeterminism or mutable
#: state inside them corrupts every key they derive (DET001).
KEY_DERIVATION: frozenset[str] = frozenset({
    "stable_hash", "config_key", "extract_features",
})


def _trim(text: str) -> str:
    if len(text) > _CHAIN_LIMIT:
        return text[:_CHAIN_LIMIT - 3] + "..."
    return text


def _render_key(key: StateKey) -> str:
    _kind, scope, name = key
    return f"{scope}.{name}"


def _field_immutable(key: StateKey, mutable: frozenset[StateKey],
                     state: StateModel) -> bool:
    """Fields never written outside init, or of non-escaping classes."""
    if key[0] != "field":
        return False
    if key not in mutable:
        return True
    return key[1] not in state.shared_classes


def check_key001(
    sites: list[MemoSite],
    effects: EffectModel,
    state: StateModel,
    mutable: frozenset[StateKey],
    global_exempt: dict[StateKey, str],
    disable: frozenset[str],
) -> list[Finding]:
    """A value the computation reads is absent from the cache key."""
    if "KEY001" in disable:
        return []
    findings: list[Finding] = []
    for site in sites:
        if not site.compute:
            continue
        covered = set(site.key_names) | site.keyed_by
        reads = effects.merged("reads", site.compute)
        for key in sorted(reads):
            kind, scope, name = key
            if key not in mutable:
                continue  # frozen constant: cannot go stale
            if key in global_exempt or name in site.exempt:
                continue
            if name in covered:
                continue
            if kind == "field":
                if _field_immutable(key, mutable, state):
                    continue
                # The whole receiver in the key covers its fields.
                if "self" in site.key_names and site.node.owner \
                        is not None and scope == site.node.owner.qualname:
                    continue
            fact: Fact = reads[key]
            findings.append(Finding(
                path=site.path, line=site.line, col=0, rule="KEY001",
                message=(
                    f"cache key for {site.cache_name} omits mutable "
                    f"state '{_render_key(key)}' that the computation "
                    f"reads: {_trim(fact.chain)}; a change to it would "
                    f"serve a stale cached result — add it to the key, "
                    f"or declare '# repro: keyed-by[{name}]' if the key "
                    f"already embeds it, or '# repro: key-exempt"
                    f"[{name}: reason]' at the site or the definition"
                ),
            ))
    return findings


def check_key002(
    sites: list[MemoSite],
    effects: EffectModel,
    disable: frozenset[str],
) -> list[Finding]:
    """The key hashes values the computation never reads."""
    if "KEY002" in disable:
        return []
    findings: list[Finding] = []
    for site in sites:
        if site.key_opaque or not site.compute:
            continue
        mentioned = effects.merged_mentions(site.compute)
        for name in sorted(site.key_value_names):
            if name == "self" or name in site.keyed_by or \
                    name in site.exempt:
                continue
            if name in mentioned:
                continue
            findings.append(Finding(
                path=site.path, line=site.line, col=0, rule="KEY002",
                message=(
                    f"cache key for {site.cache_name} includes "
                    f"'{name}' but the computation "
                    f"({', '.join(n.short for n in site.compute)}) "
                    f"never reads it: identical results are split "
                    f"across distinct cache entries, silently killing "
                    f"the hit rate — drop '{name}' from the key or "
                    f"declare '# repro: keyed-by[{name}]' if it reaches "
                    f"the computation invisibly"
                ),
            ))
    return findings


def check_det001(
    sites: list[MemoSite],
    effects: EffectModel,
    model_nodes: dict,
    project,
    global_exempt: dict[StateKey, str],
    mutable: frozenset[StateKey],
    disable: frozenset[str],
) -> list[Finding]:
    """Nondeterministic sources reachable from cached computations and
    key-derivation functions."""
    if "DET001" in disable:
        return []
    findings: list[Finding] = []
    for site in sites:
        if not site.compute:
            continue
        nondet = effects.merged("nondet", site.compute)
        for source in sorted(nondet):
            if any(token in site.exempt for token in (source,)):
                continue
            fact: Fact = nondet[source]
            findings.append(Finding(
                path=site.path, line=site.line, col=0, rule="DET001",
                message=(
                    f"cached computation behind {site.cache_name} "
                    f"reaches a nondeterministic source — {source}: "
                    f"{_trim(fact.chain)}; the same key could cache "
                    f"different results across runs — remove the "
                    f"source or hoist it out of the cached path"
                ),
            ))
    # Key-derivation functions must themselves be deterministic and
    # read no mutable state: their output is the key.
    for qual, node in sorted(model_nodes.items()):
        if node.name not in KEY_DERIVATION:
            continue
        fn = project.functions.get(qual)
        line = fn.node.lineno if fn is not None else 1
        for source in sorted(effects.nondet.get(qual, {})):
            fact = effects.nondet[qual][source]
            findings.append(Finding(
                path=node.module.path, line=line, col=0, rule="DET001",
                message=(
                    f"key-derivation function {node.short} reaches a "
                    f"nondeterministic source — {source}: "
                    f"{_trim(fact.chain)}; keys derived from it are "
                    f"not reproducible"
                ),
            ))
        for key in sorted(effects.reads.get(qual, {})):
            if key not in mutable or key in global_exempt:
                continue
            fact = effects.reads[qual][key]
            findings.append(Finding(
                path=node.module.path, line=line, col=0, rule="DET001",
                message=(
                    f"key-derivation function {node.short} reads "
                    f"mutable state '{_render_key(key)}': "
                    f"{_trim(fact.chain)}; two calls with identical "
                    f"inputs could derive different keys"
                ),
            ))
    return findings


def check_det002(
    sites: list[MemoSite],
    effects: EffectModel,
    state: StateModel,
    mutable: frozenset[StateKey],
    global_exempt: dict[StateKey, str],
    disable: frozenset[str],
) -> list[Finding]:
    """A cached computation mutates state outside its own frame."""
    if "DET002" in disable:
        return []
    findings: list[Finding] = []
    for site in sites:
        if not site.compute:
            continue
        writes = effects.merged("writes", site.compute)
        for key in sorted(writes):
            kind, scope, name = key
            if key in global_exempt or name in site.exempt:
                continue
            if kind == "field" and scope not in state.shared_classes:
                continue  # mutating a non-escaping instance is local
            if kind == "field" and site.node.owner is not None and \
                    scope == site.node.owner.qualname and \
                    "self" in site.key_names:
                # Writing fields of the keyed receiver is the
                # established lazy-attribute caching idiom; CP003
                # covers mutation of the *shared result*.
                continue
            fact: Fact = writes[key]
            findings.append(Finding(
                path=site.path, line=site.line, col=0, rule="DET002",
                message=(
                    f"cached computation behind {site.cache_name} "
                    f"mutates state outside its frame — "
                    f"'{_render_key(key)}': {_trim(fact.chain)}; on a "
                    f"cache hit the mutation is skipped, so program "
                    f"state depends on cache history — hoist the side "
                    f"effect out of the cached path or declare "
                    f"'# repro: key-exempt[{name}: reason]'"
                ),
            ))
    return findings


def run_rules(
    sites: list[MemoSite],
    effects: EffectModel,
    state: StateModel,
    model,
    mutable: frozenset[StateKey],
    global_exempt: dict[StateKey, str],
    note_findings: list[Finding],
    disable: frozenset[str],
) -> list[Finding]:
    """Run every KEY/DET rule and return the merged finding list."""
    findings: list[Finding] = []
    findings.extend(check_key001(
        sites, effects, state, mutable, global_exempt, disable,
    ))
    findings.extend(check_key002(sites, effects, disable))
    findings.extend(check_det001(
        sites, effects, model.nodes, model.project, global_exempt,
        mutable, disable,
    ))
    findings.extend(check_det002(
        sites, effects, state, mutable, global_exempt, disable,
    ))
    if "KEYNOTE" not in disable:
        findings.extend(note_findings)
    return findings
