"""Memoization-site discovery for the cache-key soundness pass.

A *site* is one place a computation's result is stored under a key:

* ``<memo>.get_or_compute(key, compute)`` — the :class:`repro.fastpath
  .Memo` protocol used by the array/gate/repeater/batch/serve layers;
* ``functools.lru_cache`` / ``functools.cache`` decorated defs — the
  parameters *are* the key;
* ``<cache>.put(key, value)`` — the persistent ``EvalCache`` admission
  sites in the evaluation engine.

For each site the scanner resolves the *key component names* (which
identifiers flow into the key expression, tracing locals through
assignments and ``zip`` loop targets) and the *compute entry nodes*
(which call-graph nodes produce the cached value, resolving lambdas,
bound methods, ``functools.partial``, and decorator-bound closure
parameters via ``ContextModel.decorator_bindings``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.concurrency.contexts import (
    ContextModel,
    Node,
    dotted_chain,
    iter_own_statements,
)

#: Decorator terminals that memoize the decorated def on its arguments.
LRU_DECORATORS: frozenset[str] = frozenset({
    "lru_cache", "cache", "cached_property",
})

#: Bounded depth for the intra-function producer trace.
_TRACE_DEPTH = 6

#: Names that appear in key expressions but are derivation machinery,
#: never key *data*.
_KEY_MACHINERY: frozenset[str] = frozenset({
    "stable_hash", "config_key", "extract_features", "sorted", "tuple",
    "frozenset", "str", "repr", "len", "asdict", "astuple", "dict",
    "hash", "id", "type", "isinstance", "min", "max", "round", "zip",
    "enumerate", "range",
})


@dataclass  # repro: noqa[SPEC001] -- declarations bind in post-pass
class MemoSite:
    """One memoization site and everything the rules need about it."""

    kind: str  # "memo" | "lru" | "cache-put"
    path: str
    line: int
    end_line: int
    node: Node  # the enclosing node (== compute node for "lru")
    cache_name: str  # display, e.g. "_OPTIMUM_MEMO.get_or_compute"
    key_names: frozenset[str]
    key_value_names: frozenset[str]  # plain-name subset, for KEY002
    key_opaque: bool
    compute: tuple[Node, ...]
    keyed_by: set[str] = field(default_factory=set)
    exempt: dict[str, str] = field(default_factory=dict)

    @property
    def where(self) -> str:
        return f"{self.path}:{self.line}"


class _Tracer:
    """Bounded intra-function producer trace for local names.

    Resolves ``cache.put(key, record)`` back to the expressions that
    produced ``key`` and ``record``: plain assignments, tuple-unpacking
    assignments, and ``for a, b in zip(xs, ys)`` loop targets.
    """

    def __init__(self, node: Node) -> None:
        self.node = node
        #: name -> (expr, tuple index | None); index selects a zip arm
        #: or a tuple-unpack slot.
        self.producers: dict[str, tuple[ast.expr, int | None]] = {}
        body = node.body
        statements = body if isinstance(body, list) else [ast.Expr(body)]
        for item in iter_own_statements(statements):
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    self._note_target(target, item.value)
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                self._note_target(item.target, item.value)
            elif isinstance(item, ast.For):
                self._note_loop(item.target, item.iter)

    def _note_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.producers.setdefault(target.id, (value, None))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for index, element in enumerate(target.elts):
                if isinstance(element, ast.Name):
                    self.producers.setdefault(
                        element.id, (value, index),
                    )

    def _note_loop(self, target: ast.expr, iterable: ast.expr) -> None:
        # ``for key, rec in zip(keys, records)``: position selects the
        # zip arm; a plain iterable maps every target to it whole.
        if isinstance(target, ast.Name):
            self.producers.setdefault(target.id, (iterable, None))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for index, element in enumerate(target.elts):
                if isinstance(element, ast.Name):
                    self.producers.setdefault(
                        element.id, (iterable, index),
                    )

    def resolve(self, expr: ast.expr, depth: int = 0) -> ast.expr:
        """The most informative producer expression behind ``expr``."""
        if depth >= _TRACE_DEPTH:
            return expr
        if isinstance(expr, ast.Name):
            produced = self.producers.get(expr.id)
            if produced is None:
                return expr
            value, index = produced
            value = self._select(value, index)
            if value is expr:
                return expr
            return self.resolve(value, depth + 1)
        if isinstance(expr, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp)):
            return self.resolve(expr.elt, depth + 1)
        if isinstance(expr, ast.Starred):
            return self.resolve(expr.value, depth + 1)
        return expr

    def _select(self, value: ast.expr, index: int | None) -> ast.expr:
        if index is None:
            return value
        if isinstance(value, ast.Call) and isinstance(
            value.func, ast.Name
        ) and value.func.id == "zip" and index < len(value.args):
            return value.args[index]
        if isinstance(value, (ast.Tuple, ast.List)) and \
                index < len(value.elts):
            return value.elts[index]
        return value


def key_component_names(
    expr: ast.expr,
) -> tuple[frozenset[str], frozenset[str]]:
    """Identifier components of a key expression.

    Returns ``(all_names, value_names)``. ``all_names`` is every
    contributing identifier — loaded names plus attribute terminals,
    excluding callable heads (``stable_hash(...)`` contributes its
    arguments, not its own name) and derivation machinery — and feeds
    the KEY001 coverage check. ``value_names`` is the plain-name
    subset: names not reached through an attribute projection like
    ``record.key``, for which absence from the compute's mention set
    is a meaningful never-read test (KEY002). An attribute projection
    routinely stands in for a value the compute reads under another
    name (``record.key`` *is* ``config_key(config)``), so projections
    are exempt from the over-keying check.
    """
    heads: set[int] = set()
    in_attribute: set[int] = set()
    for item in ast.walk(expr):
        if isinstance(item, ast.Call):
            target = item.func
            while isinstance(target, ast.Attribute):
                heads.add(id(target))
                target = target.value
            heads.add(id(target))
        elif isinstance(item, ast.Attribute):
            for sub in ast.walk(item):
                if isinstance(sub, ast.Name):
                    in_attribute.add(id(sub))
    names: set[str] = set()
    plain: set[str] = set()
    for item in ast.walk(expr):
        if id(item) in heads:
            continue
        if isinstance(item, ast.Name) and isinstance(item.ctx, ast.Load):
            names.add(item.id)
            if id(item) not in in_attribute:
                plain.add(item.id)
        elif isinstance(item, ast.Attribute):
            names.add(item.attr)
    return (
        frozenset(names - _KEY_MACHINERY),
        frozenset(plain - _KEY_MACHINERY),
    )


class _SiteScanner:
    """Discover the memo sites inside one node."""

    def __init__(self, model: ContextModel, node: Node) -> None:
        self.model = model
        self.node = node
        self.tracer = _Tracer(node)

    # -- compute resolution ----------------------------------------------

    def _closure_param_owner(self, name: str) -> Node | None:
        """The enclosing-scope node that defines ``name`` as a param."""
        qual = self.node.qualname
        while "." in qual:
            qual = qual.rsplit(".", 1)[0]
            owner = self.model.nodes.get(qual)
            if owner is not None and name in owner.params:
                return owner
        return None

    def resolve_compute(self, expr: ast.expr) -> tuple[Node, ...]:
        if isinstance(expr, ast.Lambda):
            for lam in self.node.inline_lambdas:
                if lam.body is expr.body:
                    return (lam,)
            return ()
        if isinstance(expr, ast.Name):
            if expr.id in self.node.params:
                owner = self.node
            else:
                owner = self._closure_param_owner(expr.id)
            if owner is not None:
                # A closure/callable parameter: if the owner is a
                # decorator, the bound callables are the real computes.
                bound = self.model.decorator_bindings.get(
                    owner.qualname, [],
                )
                return tuple(bound)
            produced = self.tracer.resolve(expr)
            if produced is not expr:
                return self.resolve_compute(produced)
            local = self.model.nodes.get(
                f"{self.node.module.qualname}.{expr.id}"
            )
            if local is not None:
                return (local,)
            imported = self.node.module.imports.get(expr.id)
            if imported is not None and imported[0] == "symbol":
                target = self.model.nodes.get(imported[1])
                if target is not None:
                    return (target,)
            return ()
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and \
                    expr.value.id == self.node.self_name and \
                    self.node.owner is not None:
                method = self.node.owner.methods.get(expr.attr)
                if method is not None:
                    found = self.model.nodes.get(method.qualname)
                    return (found,) if found is not None else ()
            chain = dotted_chain(expr, self.node.module)
            if chain is not None:
                found = self.model.nodes.get(chain)
                if found is not None:
                    return (found,)
            return ()
        if isinstance(expr, ast.Call):
            chain = dotted_chain(expr.func, self.node.module)
            if chain is not None and \
                    chain.rsplit(".", 1)[-1] == "partial" and expr.args:
                return self.resolve_compute(expr.args[0])
            # A producing call: the callee computes the cached value.
            return self.resolve_compute(expr.func)
        return ()

    # -- key resolution --------------------------------------------------

    def resolve_key(
        self, expr: ast.expr,
    ) -> tuple[frozenset[str], frozenset[str], bool]:
        produced = self.tracer.resolve(expr)
        names, value_names = key_component_names(produced)
        opaque = False
        if isinstance(produced, ast.Name):
            # An untraceable bare name (typically a key *parameter*):
            # the composition is invisible from here.
            opaque = True
        if names & self._packed_param_names():
            # ``stable_hash(args)`` over a ``*args`` pack: the key
            # covers an unknowable set of values, so over-keying can't
            # be judged (KEY001 name checks still apply).
            opaque = True
        return names, value_names, opaque

    def _packed_param_names(self) -> set[str]:
        """``*args``/``**kwargs`` names of this node and its closures."""
        names: set[str] = set()
        qual = self.node.qualname
        while qual:
            fn = self.model.project.functions.get(qual)
            if fn is not None:
                formals = fn.node.args
                if formals.vararg is not None:
                    names.add(formals.vararg.arg)
                if formals.kwarg is not None:
                    names.add(formals.kwarg.arg)
            if "." not in qual:
                break
            qual = qual.rsplit(".", 1)[0]
        return names

    # -- discovery -------------------------------------------------------

    def scan(self) -> list[MemoSite]:
        sites: list[MemoSite] = []
        body = self.node.body
        statements = body if isinstance(body, list) else [ast.Expr(body)]
        for item in iter_own_statements(statements):
            if not isinstance(item, ast.Call):
                continue
            func = item.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "get_or_compute" and len(item.args) >= 2:
                sites.append(self._memo_site(item, func))
            elif func.attr == "put" and len(item.args) >= 2 and \
                    self._cache_receiver(func.value):
                sites.append(self._put_site(item, func))
        return sites

    def _memo_site(self, call: ast.Call,
                   func: ast.Attribute) -> MemoSite:
        receiver = _terminal(func.value) or "memo"
        key_names, value_names, opaque = self.resolve_key(call.args[0])
        return MemoSite(
            kind="memo",
            path=self.node.module.path,
            line=call.lineno,
            end_line=call.end_lineno or call.lineno,
            node=self.node,
            cache_name=f"{receiver}.get_or_compute",
            key_names=key_names,
            key_value_names=value_names,
            key_opaque=opaque,
            compute=self.resolve_compute(call.args[1]),
        )

    def _cache_receiver(self, expr: ast.expr) -> bool:
        """Whether a ``.put`` receiver looks like the EvalCache."""
        name = _terminal(expr)
        if name is not None and "cache" in name.lower():
            return True
        typ = None
        if isinstance(expr, ast.Name):
            typ = self.model.global_types.get(
                (self.node.module.qualname, expr.id)
            )
        elif isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ) and expr.value.id == self.node.self_name and \
                self.node.owner is not None:
            typ = self.model.field_types.get(
                (self.node.owner.qualname, expr.attr)
            )
        return typ is not None and typ.endswith(".EvalCache")

    def _put_site(self, call: ast.Call, func: ast.Attribute) -> MemoSite:
        receiver = _terminal(func.value) or "cache"
        key_names, value_names, opaque = self.resolve_key(call.args[0])
        return MemoSite(
            kind="cache-put",
            path=self.node.module.path,
            line=call.lineno,
            end_line=call.end_lineno or call.lineno,
            node=self.node,
            cache_name=f"{receiver}.put",
            key_names=key_names,
            key_value_names=value_names,
            key_opaque=opaque,
            compute=self.resolve_compute(call.args[1]),
        )


def _terminal(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _lru_sites(model: ContextModel) -> list[MemoSite]:
    sites: list[MemoSite] = []
    for fn in model.project.functions.values():
        node = model.nodes.get(fn.qualname)
        if node is None:
            continue
        for dec in fn.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            terminal = _terminal(target)
            if terminal not in LRU_DECORATORS:
                continue
            bindable = node.params[1:] if fn.self_name is not None \
                else node.params
            sites.append(MemoSite(
                kind="lru",
                path=node.module.path,
                line=fn.node.lineno,
                end_line=fn.node.body[0].lineno - 1 if fn.node.body
                else fn.node.lineno,
                node=node,
                cache_name=f"functools.{terminal}[{node.short}]",
                key_names=frozenset(bindable),
                key_value_names=frozenset(bindable),
                key_opaque=False,
                compute=(node,),
            ))
            break
    return sites


def discover_sites(model: ContextModel) -> list[MemoSite]:
    """Every memoization site in the project, in a stable order."""
    sites: list[MemoSite] = []
    all_nodes = list(model.nodes.values()) + list(model.lambda_nodes)
    for node in all_nodes:
        sites.extend(_SiteScanner(model, node).scan())
    sites.extend(_lru_sites(model))
    sites.sort(key=lambda site: (site.path, site.line, site.cache_name))
    return sites
