"""The ``keyed-by`` / ``key-exempt`` declaration grammar.

Two comment forms drive the cache-key soundness pass, mirroring the
``dim[...]`` and ``guarded-by[...]`` grammars of the earlier passes:

* ``# repro: keyed-by[name, other]`` — attached to a memoization site,
  asserts that the named values *are* part of the cache key even though
  the analysis cannot see the flow (e.g. the key is a content hash of a
  record that embeds them). KEY001/KEY002 treat the names as covered.
* ``# repro: key-exempt[name: reason]`` — attached to a memoization
  site *or* to a module-global definition, waives KEY/DET findings for
  that name. The reason is mandatory: an exemption without a written
  justification is exactly the silent staleness the pass exists to
  prevent, and is rejected as KEYNOTE.

Comments are collected with :mod:`tokenize` so strings that merely look
like comments are never matched.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

_KEYED_BY_RE = re.compile(r"#\s*repro:\s*keyed-by\[(?P<body>[^\]]*)\]")
_KEY_EXEMPT_RE = re.compile(
    r"#\s*repro:\s*key-exempt\[(?P<body>[^\]]*)\]"
)
_LOOSE_RE = re.compile(r"#\s*repro:\s*(?P<form>keyed-by|key-exempt)\b")


@dataclass  # repro: noqa[SPEC001] -- mutable parse accumulator
class KeyComments:
    """Parsed key declarations of one module, by source line."""

    #: line -> names asserted to be covered by the key.
    keyed_by: dict[int, set[str]] = field(default_factory=dict)
    #: line -> name -> written reason for the exemption.
    exempt: dict[int, dict[str, str]] = field(default_factory=dict)
    #: (line, message) pairs for malformed declarations (KEYNOTE).
    errors: list[tuple[int, str]] = field(default_factory=list)

    def in_range(self, first: int, last: int) -> tuple[
        set[str], dict[str, str], set[int],
    ]:
        """Declarations attached to a statement spanning the lines.

        Returns ``(keyed_by names, exempt name->reason, claimed lines)``.
        """
        keyed: set[str] = set()
        exempt: dict[str, str] = {}
        claimed: set[int] = set()
        for line in range(first, last + 1):
            if line in self.keyed_by:
                keyed |= self.keyed_by[line]
                claimed.add(line)
            if line in self.exempt:
                exempt.update(self.exempt[line])
                claimed.add(line)
        return keyed, exempt, claimed


def parse_key_comments(source: str) -> KeyComments:
    """Collect every key declaration comment in a module source."""
    out = KeyComments()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line = tok.start[0]
        matched = False
        keyed = _KEYED_BY_RE.search(tok.string)
        if keyed is not None:
            matched = True
            names = [
                part.strip() for part in keyed.group("body").split(",")
            ]
            good: set[str] = set()
            for name in names:
                if name and name.replace("_", "a").isidentifier():
                    good.add(name)
                else:
                    out.errors.append((
                        line,
                        f"keyed-by name {name!r} is not an identifier",
                    ))
            if good:
                out.keyed_by.setdefault(line, set()).update(good)
        exempted = _KEY_EXEMPT_RE.search(tok.string)
        if exempted is not None:
            matched = True
            body = exempted.group("body")
            name, sep, reason = body.partition(":")
            name = name.strip()
            reason = reason.strip()
            if not name or not name.replace("_", "a").isidentifier():
                out.errors.append((
                    line,
                    f"key-exempt name {name!r} is not an identifier",
                ))
            elif not sep or not reason:
                out.errors.append((
                    line,
                    f"key-exempt[{name}] carries no reason: expected "
                    "'# repro: key-exempt[name: reason]' — an exemption "
                    "must say why staleness is impossible",
                ))
            else:
                out.exempt.setdefault(line, {})[name] = reason
        if not matched:
            loose = _LOOSE_RE.search(tok.string)
            if loose is not None:
                form = loose.group("form")
                out.errors.append((
                    line,
                    f"malformed {form} comment: expected "
                    f"'# repro: {form}[...]'",
                ))
    return out
