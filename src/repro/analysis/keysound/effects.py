"""Transitive effect inference for the cache-key soundness pass.

For every node in the project call graph this module computes, to a
fixpoint over call edges (including inline lambdas and the decorator
bindings resolved by :mod:`..concurrency.contexts`):

* the *read set* — shared state keys (module globals, instance fields)
  the node transitively reads;
* the *write set* — shared state keys it transitively writes outside
  ``__init__`` frames (the DET002 facts);
* the *nondeterministic sources* it transitively reaches — wall-clock
  and monotonic time, random/uuid/secrets, ``os.environ``, ``hash()``,
  file reads, and iteration over visibly-unsorted sets;
* the *mention set* — every identifier the node (or anything it calls)
  names, which KEY002 uses to prove a key component is never read.

Every read/write/nondet fact carries the originating source location
and a human-readable chain describing how the cached computation
reaches it, in the style of the DIM/CONC inference chains.

Nodes in *neutral* modules (``repro.fastpath``, ``repro.obs``) are
instrumentation plumbing: memo bookkeeping and metrics counters would
otherwise flag every cached computation, so they contribute no facts
and are not traversed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.concurrency.contexts import (
    ContextModel,
    MAX_PASSES,
    Node,
    dotted_chain,
    iter_own_statements,
)
from repro.analysis.concurrency.state import StateKey, StateModel

#: Module qualnames (exact or dotted prefixes) whose nodes are
#: instrumentation: no facts in, no traversal through.
NEUTRAL_MODULES: tuple[str, ...] = ("repro.fastpath", "repro.obs")

#: Dotted call chains that read a nondeterministic source. Values are
#: the display names embedded in DET001 findings.
NONDET_CHAINS: dict[str, str] = {
    "time.time": "wall-clock time (time.time)",
    "time.time_ns": "wall-clock time (time.time_ns)",
    "time.monotonic": "monotonic time (time.monotonic)",
    "time.monotonic_ns": "monotonic time (time.monotonic_ns)",
    "time.perf_counter": "monotonic time (time.perf_counter)",
    "time.perf_counter_ns": "monotonic time (time.perf_counter_ns)",
    "time.process_time": "process time (time.process_time)",
    "datetime.datetime.now": "wall-clock time (datetime.now)",
    "datetime.datetime.utcnow": "wall-clock time (datetime.utcnow)",
    "datetime.date.today": "wall-clock time (date.today)",
    "os.urandom": "randomness (os.urandom)",
    "os.getenv": "process environment (os.getenv)",
    "os.getpid": "process identity (os.getpid)",
    "uuid.uuid1": "randomness (uuid.uuid1)",
    "uuid.uuid4": "randomness (uuid.uuid4)",
}

#: Chain *prefixes* that are nondeterministic whatever the terminal.
NONDET_PREFIXES: dict[str, str] = {
    "random.": "randomness (random module)",
    "secrets.": "randomness (secrets module)",
    "numpy.random.": "randomness (numpy.random)",
}

#: Attribute-call terminals that read files (content can change between
#: identically-keyed calls).
_FILE_READ_ATTRS: frozenset[str] = frozenset({
    "read_text", "read_bytes", "readlines",
})


@dataclass(frozen=True)
class Fact:
    """One effect fact: where it originates and how it was reached."""

    path: str
    line: int
    chain: str


@dataclass  # repro: noqa[SPEC001] -- mutable fixpoint fact table
class EffectModel:
    """Solved per-node effect tables, keyed by node qualname."""

    reads: dict[str, dict[StateKey, Fact]] = field(default_factory=dict)
    writes: dict[str, dict[StateKey, Fact]] = field(default_factory=dict)
    nondet: dict[str, dict[str, Fact]] = field(default_factory=dict)
    mentions: dict[str, set[str]] = field(default_factory=dict)
    passes: int = 0

    def merged(self, kind: str, nodes: tuple[Node, ...]) -> dict:
        """Union of one fact table across several entry nodes."""
        table = getattr(self, kind)
        out: dict = {}
        for node in nodes:
            for key, fact in table.get(node.qualname, {}).items():
                out.setdefault(key, fact)
        return out

    def merged_mentions(self, nodes: tuple[Node, ...]) -> set[str]:
        out: set[str] = set()
        for node in nodes:
            out |= self.mentions.get(node.qualname, set())
        return out


def is_neutral(node: Node) -> bool:
    """Whether a node lives in an instrumentation module."""
    qual = node.module.qualname
    return any(
        qual == prefix or qual.startswith(prefix + ".")
        for prefix in NEUTRAL_MODULES
    )


def _own_items(node: Node) -> list[ast.AST]:
    body = node.body
    statements = body if isinstance(body, list) else [ast.Expr(body)]
    return list(iter_own_statements(statements))


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    return False


def _scan_nondet(node: Node) -> dict[str, Fact]:
    """Direct nondeterministic sources in one node's own body."""
    found: dict[str, Fact] = {}

    def note(source: str, line: int) -> None:
        found.setdefault(source, Fact(
            path=node.module.path, line=line,
            chain=f"{source} at {node.module.path}:{line} "
                  f"in {node.short}",
        ))

    for item in _own_items(node):
        if isinstance(item, ast.Call):
            chain = dotted_chain(item.func, node.module)
            if chain is not None:
                if chain in NONDET_CHAINS:
                    note(NONDET_CHAINS[chain], item.lineno)
                else:
                    for prefix, what in NONDET_PREFIXES.items():
                        if chain.startswith(prefix):
                            note(what, item.lineno)
                            break
            if isinstance(item.func, ast.Name) and \
                    item.func.id in ("hash", "input"):
                what = "hash() (PYTHONHASHSEED-dependent)" \
                    if item.func.id == "hash" else "interactive input()"
                note(what, item.lineno)
            if isinstance(item.func, ast.Name) and item.func.id == "open":
                note("file read (open)", item.lineno)
            if isinstance(item.func, ast.Attribute) and \
                    item.func.attr in _FILE_READ_ATTRS:
                note(f"file read (.{item.func.attr}())", item.lineno)
        elif isinstance(item, (ast.Attribute, ast.Subscript)):
            target = item if isinstance(item, ast.Attribute) \
                else item.value
            chain = dotted_chain(target, node.module) \
                if isinstance(target, ast.Attribute) else None
            if chain == "os.environ":
                note("process environment (os.environ)", item.lineno)
        elif isinstance(item, ast.For) and _is_set_expr(item.iter):
            note("iteration over an unsorted set", item.lineno)
        elif isinstance(item, ast.comprehension) and \
                _is_set_expr(item.iter):
            note("iteration over an unsorted set", item.iter.lineno)
    return found


def _scan_mentions(node: Node) -> set[str]:
    names: set[str] = set()
    for item in _own_items(node):
        if isinstance(item, ast.Name):
            names.add(item.id)
        elif isinstance(item, ast.Attribute):
            names.add(item.attr)
        elif isinstance(item, ast.arg):
            names.add(item.arg)
    return names


def solve_effects(model: ContextModel, state: StateModel) -> EffectModel:
    """Collect per-node facts and propagate them along call edges."""
    effects = EffectModel()
    all_nodes = list(model.nodes.values()) + list(model.lambda_nodes)
    live = [node for node in all_nodes if not is_neutral(node)]
    # Base facts.
    for node in live:
        effects.reads[node.qualname] = {}
        effects.writes[node.qualname] = {}
        effects.nondet[node.qualname] = _scan_nondet(node)
        effects.mentions[node.qualname] = _scan_mentions(node)
    for access in state.accesses:
        if is_neutral(access.node):
            continue
        fact = Fact(
            path=access.node.module.path, line=access.line,
            chain=(
                f"{access.op} of {access.key[1]}.{access.key[2]} at "
                f"{access.node.module.path}:{access.line} in "
                f"{access.node.short}"
            ),
        )
        bucket = effects.reads if not access.write else effects.writes
        if access.write and access.in_init:
            continue  # constructing your own frame is not a side effect
        bucket.setdefault(access.node.qualname, {}).setdefault(
            access.key, fact,
        )
    # Propagation: callee facts flow to callers with extended chains.
    ordered = sorted(live, key=lambda node: node.qualname)
    for sweep in range(MAX_PASSES):
        changed = False
        for node in ordered:
            edges: list[tuple[Node, int]] = [
                (edge.callee, edge.line) for edge in node.calls
            ] + [
                (lam, lam.body.lineno if isinstance(lam.body, ast.expr)
                 else 0)
                for lam in node.inline_lambdas
            ]
            for callee, line in edges:
                if is_neutral(callee) or callee.qualname == node.qualname:
                    continue
                hop = (
                    f", reached via {callee.short} called at "
                    f"{node.module.path}:{line}"
                )
                for kind in ("reads", "writes", "nondet"):
                    mine = getattr(effects, kind).setdefault(
                        node.qualname, {},
                    )
                    theirs = getattr(effects, kind).get(
                        callee.qualname, {},
                    )
                    for key, fact in theirs.items():
                        if key not in mine:
                            mine[key] = Fact(
                                path=fact.path, line=fact.line,
                                chain=fact.chain + hop,
                            )
                            changed = True
                their_names = effects.mentions.get(callee.qualname)
                if their_names:
                    mine_names = effects.mentions.setdefault(
                        node.qualname, set(),
                    )
                    before = len(mine_names)
                    mine_names |= their_names
                    changed |= len(mine_names) != before
        effects.passes = sweep + 1
        if not changed:
            break
    return effects


def mutable_state_keys(state: StateModel) -> frozenset[StateKey]:
    """State keys with at least one non-init write anywhere.

    A module global that no function ever writes is a frozen constant:
    it cannot change between identically-keyed calls within a process,
    so reading it is not a KEY001 staleness hazard. Writes from neutral
    instrumentation modules still count — ``fastpath.set_enabled``
    really does mutate ``_enabled``.
    """
    return frozenset(
        access.key
        for access in state.accesses
        if access.write and not access.in_init
    )
