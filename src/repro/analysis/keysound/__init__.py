"""Whole-program cache-key soundness & determinism analysis (KEY/DET).

The reproduction answers through five caching layers (fastpath memos,
the persistent EvalCache, the batch compile memo, the surrogate tier,
and the serve process-wide cache); a single memoized function that
reads state *not* captured in its key silently serves stale physics —
the worst failure mode for a model whose contract is that the same
config always yields the same report. This pass makes the guarantee
whole-program:

* **KEY001** — the computation behind a memoization site transitively
  reads mutable state that is absent from the key derivation;
* **KEY002** — the key hashes values the computation never reads
  (over-keying that silently splits identical results across entries);
* **DET001** — a nondeterministic source (time, rng, env, file reads,
  unsorted-set iteration) is reachable from a cached computation or a
  key-derivation function;
* **DET002** — a cached computation transitively mutates state outside
  its own frame (generalizing CP003 across calls);
* **KEYNOTE** — malformed or unattached ``# repro: keyed-by[...]`` /
  ``# repro: key-exempt[name: reason]`` declarations.

The pass reuses the concurrency substrate — the shared project call
graph, the solved :class:`~repro.analysis.concurrency.contexts
.ContextModel` (with decorator/partial resolution) and the
:class:`~repro.analysis.concurrency.state.StateModel` access table —
so a ``lint --all`` run builds each structure exactly once.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.concurrency.contexts import ContextModel
from repro.analysis.concurrency.state import StateKey, StateModel
from repro.analysis.context import ModuleSource
from repro.analysis.finding import Finding
from repro.analysis.keysound.comments import (
    KeyComments,
    parse_key_comments,
)
from repro.analysis.keysound.effects import (
    EffectModel,
    is_neutral,
    mutable_state_keys,
    solve_effects,
)
from repro.analysis.keysound.rules import KEY_DERIVATION, run_rules
from repro.analysis.keysound.sites import MemoSite, discover_sites

__all__ = [
    "EffectModel",
    "KEY_DERIVATION",
    "KeyComments",
    "MemoSite",
    "analyze_keysound",
    "build_keysound_model",
    "discover_sites",
    "is_neutral",
    "parse_key_comments",
    "solve_effects",
]


def _bind_comments(
    model: ContextModel,
    sites: list[MemoSite],
    sources: dict[str, str],
) -> tuple[dict[StateKey, str], list[Finding]]:
    """Attach declarations to sites and global definitions.

    Returns the project-wide definition-site exemptions plus the
    KEYNOTE findings for malformed or unattached declarations.
    """
    global_exempt: dict[StateKey, str] = {}
    notes: list[Finding] = []
    by_path: dict[str, list[MemoSite]] = {}
    for site in sites:
        by_path.setdefault(site.path, []).append(site)
    for info in model.project.by_qual.values():
        text = sources.get(info.path)
        if text is None:
            continue
        comments = parse_key_comments(text)
        for line, message in comments.errors:
            notes.append(Finding(
                path=info.path, line=line, col=0, rule="KEYNOTE",
                message=message,
            ))
        if not comments.keyed_by and not comments.exempt:
            continue
        claimed: set[int] = set()
        # Memo sites claim declarations on their statement lines.
        for site in by_path.get(info.path, []):
            keyed, exempt, taken = comments.in_range(
                site.line, site.end_line,
            )
            site.keyed_by |= keyed
            site.exempt.update(exempt)
            claimed |= taken
        # Module-global definitions claim key-exempt project-wide.
        for stmt in info.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            names = [
                target.id for target in targets
                if isinstance(target, ast.Name)
            ]
            if not names:
                continue
            first = stmt.lineno
            last = stmt.end_lineno or stmt.lineno
            for line in range(first, last + 1):
                for name, reason in comments.exempt.get(line, {}).items():
                    if name in names:
                        global_exempt[
                            ("global", info.qualname, name)
                        ] = reason
                        claimed.add(line)
                if line in comments.keyed_by and line not in claimed:
                    notes.append(Finding(
                        path=info.path, line=line, col=0, rule="KEYNOTE",
                        message=(
                            "keyed-by attaches to a memoization site, "
                            "not a definition; use key-exempt[name: "
                            "reason] to exempt a global"
                        ),
                    ))
                    claimed.add(line)
        for line in sorted(
            set(comments.keyed_by) | set(comments.exempt),
        ):
            if line not in claimed:
                notes.append(Finding(
                    path=info.path, line=line, col=0, rule="KEYNOTE",
                    message=(
                        "key declaration is not attached to a "
                        "memoization site or a module-global "
                        "definition"
                    ),
                ))
    return global_exempt, notes


def build_keysound_model(
    model: ContextModel,
    state: StateModel,
    sources: dict[str, str],
) -> tuple[list[MemoSite], EffectModel, dict[StateKey, str],
           list[Finding]]:
    """Solve sites/effects/declarations for a prepared context model.

    Exposed for the meta-suite, which asserts on the discovered sites
    and inferred effects directly in addition to the emitted findings.
    """
    sites = discover_sites(model)
    effects = solve_effects(model, state)
    global_exempt, notes = _bind_comments(model, sites, sources)
    return sites, effects, global_exempt, notes


def analyze_keysound(
    targets: Iterable[ModuleSource],
    model: ContextModel,
    state: StateModel,
    sources: dict[str, str] | None = None,
    disabled: frozenset[str] = frozenset(),
) -> dict[str, list[Finding]]:
    """Run the keysound pass and report findings for ``targets``.

    ``model``/``state`` are the shared concurrency structures (built
    once per lint invocation by the registry); ``sources`` maps every
    project module path to its text for the declaration grammar.
    Returns a mapping of target path -> sorted findings.
    """
    target_list = list(targets)
    if sources is None:
        sources = {
            info.path: "" for info in model.project.by_qual.values()
        }
    sites, effects, global_exempt, notes = build_keysound_model(
        model, state, sources,
    )
    mutable = mutable_state_keys(state)
    findings = run_rules(
        sites, effects, state, model, mutable, global_exempt,
        notes, disabled,
    )
    results: dict[str, list[Finding]] = {
        source.path: [] for source in target_list
    }
    for finding in findings:
        if finding.path in results:
            results[finding.path].append(finding)
    return {path: sorted(found) for path, found in results.items()}
