"""The dimension lattice the whole-program analysis computes over.

A physical dimension is an integer exponent vector over the six base
axes the model needs — seconds, meters, kilograms, amperes, kelvin, and
bits — plus the trivial dimensionless slot (the "7-vector" of the SI
base-unit contract in :mod:`repro.units`). Three special lattice values
surround the concrete vectors:

* :data:`UNKNOWN` — no information yet (lattice bottom). Arithmetic on
  unknowns stays unknown; checks involving unknowns stay silent.
* :data:`POLY` — a bare numeric literal. Literals are *polymorphic
  scalars*: they act dimensionless under ``*``/``/`` and adapt to the
  other operand under ``+``/``-``/comparisons, so ``delay_s = 0.0`` and
  ``1.1 * cap_f`` never produce noise.
* :data:`ANY` — conflicting information (lattice top), produced when a
  join sees two different concrete dimensions (e.g. a helper called with
  watts at one site and joules at another). Like unknowns, it silences
  downstream checks: a dimension-polymorphic helper is not an error.

Only a *concrete-vs-concrete* disagreement is ever reported, which keeps
the pass conservative: everything the inference cannot prove stays
silent.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Base axes, in vector order.
AXES: tuple[str, ...] = ("s", "m", "kg", "A", "K", "bit")


@dataclass(frozen=True)
class Dim:
    """A concrete dimension: integer exponents over :data:`AXES`."""

    exps: tuple[int, int, int, int, int, int]

    @property
    def is_dimensionless(self) -> bool:
        return not any(self.exps)

    def __str__(self) -> str:
        return format_dim(self)


class _Special:
    """A non-concrete lattice value (singletons below)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


#: No information (bottom).
UNKNOWN = _Special("UNKNOWN")
#: Polymorphic numeric literal.
POLY = _Special("POLY")
#: Conflicting information (top).
ANY = _Special("ANY")

DimValue = Dim | _Special


def _dim(
    s: int = 0, m: int = 0, kg: int = 0, a: int = 0, k: int = 0,
    bit: int = 0,
) -> Dim:
    return Dim((s, m, kg, a, k, bit))


DIMENSIONLESS = _dim()
SECOND = _dim(s=1)
METER = _dim(m=1)
SQUARE_METER = _dim(m=2)
KILOGRAM = _dim(kg=1)
AMPERE = _dim(a=1)
KELVIN = _dim(k=1)
BIT = _dim(bit=1)
HERTZ = _dim(s=-1)
VOLT = _dim(s=-3, m=2, kg=1, a=-1)
WATT = _dim(s=-3, m=2, kg=1)
JOULE = _dim(s=-2, m=2, kg=1)
FARAD = _dim(s=4, m=-2, kg=-1, a=2)
OHM = _dim(s=-3, m=2, kg=1, a=-2)
COULOMB = _dim(s=1, a=1)

#: Unit tokens accepted in dimension annotation comments, lowercase.
UNIT_TOKENS: dict[str, Dim] = {
    "1": DIMENSIONLESS,
    "s": SECOND,
    "m": METER,
    "m2": SQUARE_METER,
    "kg": KILOGRAM,
    "a": AMPERE,
    "k": KELVIN,
    "bit": BIT,
    "hz": HERTZ,
    "v": VOLT,
    "w": WATT,
    "j": JOULE,
    "f": FARAD,
    "ohm": OHM,
}

#: Preferred display names for recognizable vectors, most-derived first.
_DISPLAY: tuple[tuple[Dim, str], ...] = (
    (DIMENSIONLESS, "1"),
    (SECOND, "s"),
    (METER, "m"),
    (SQUARE_METER, "m^2"),
    (KILOGRAM, "kg"),
    (AMPERE, "A"),
    (KELVIN, "K"),
    (BIT, "bit"),
    (HERTZ, "Hz"),
    (WATT, "W"),
    (JOULE, "J"),
    (FARAD, "F"),
    (VOLT, "V"),
    (OHM, "ohm"),
    (COULOMB, "A*s"),
)
_DISPLAY_BY_DIM: dict[Dim, str] = {d: n for d, n in _DISPLAY}


def format_dim(value: DimValue) -> str:
    """Readable rendering: ``W``, ``F/m``, ``s^-1*m^2`` or a sentinel."""
    if isinstance(value, _Special):
        return value.name.lower()
    named = _DISPLAY_BY_DIM.get(value)
    if named is not None:
        return named
    # Try a named-unit-per-length/area rendering before raw exponents:
    # quantities like F/m and W/m are everywhere in the wire models.
    for per, suffix in ((METER, "/m"), (SQUARE_METER, "/m^2")):
        base = mul(value, per)
        if isinstance(base, Dim) and base in _DISPLAY_BY_DIM:
            return _DISPLAY_BY_DIM[base] + suffix
        times = div(value, per)
        if isinstance(times, Dim) and times in _DISPLAY_BY_DIM:
            named = _DISPLAY_BY_DIM[times]
            return f"{named}*m" if suffix == "/m" else f"{named}*m^2"
    parts = [
        axis if exp == 1 else f"{axis}^{exp}"
        for axis, exp in zip(AXES, value.exps)
        if exp
    ]
    return "*".join(parts)


# -- arithmetic over the lattice ------------------------------------------


def mul(left: DimValue, right: DimValue) -> DimValue:
    """Dimension of a product: exponents add; POLY is a pure scalar."""
    if left is POLY:
        return right
    if right is POLY:
        return left
    if left is ANY or right is ANY:
        return ANY
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    assert isinstance(left, Dim) and isinstance(right, Dim)
    return Dim(tuple(a + b for a, b in zip(left.exps, right.exps)))


def inverse(value: DimValue) -> DimValue:
    """Dimension of ``1 / value``."""
    if isinstance(value, Dim):
        return Dim(tuple(-e for e in value.exps))
    return value


def div(left: DimValue, right: DimValue) -> DimValue:
    """Dimension of a quotient: exponents subtract."""
    return mul(left, inverse(right))


def power(value: DimValue, exponent: int) -> DimValue:
    """Dimension of ``value ** exponent`` for an integer exponent."""
    if isinstance(value, Dim):
        return Dim(tuple(e * exponent for e in value.exps))
    return value


def sqrt(value: DimValue) -> DimValue:
    """Dimension of a square root; odd exponents are not representable."""
    if isinstance(value, Dim):
        if any(e % 2 for e in value.exps):
            return UNKNOWN
        return Dim(tuple(e // 2 for e in value.exps))
    if value is POLY:
        return POLY
    return value


def join(left: DimValue, right: DimValue) -> DimValue:
    """Lattice join: UNKNOWN < POLY < concrete < ANY."""
    if left is UNKNOWN:
        return right
    if right is UNKNOWN:
        return left
    if left is POLY:
        return right
    if right is POLY:
        return left
    if left is ANY or right is ANY:
        return ANY
    if left == right:
        return left
    return ANY


def compatible(left: DimValue, right: DimValue) -> bool:
    """Whether two values may meet under ``+``/``-``/comparison.

    Only a concrete-vs-concrete mismatch is incompatible; everything
    involving UNKNOWN/ANY/POLY is permitted (conservatism).
    """
    if isinstance(left, Dim) and isinstance(right, Dim):
        return left == right
    return True


def parse_unit_expr(text: str) -> Dim:
    """Parse an annotation unit expression into a :class:`Dim`.

    Grammar: ``expr ::= term (('*' | '/') term)*`` and
    ``term ::= unit ('^' int)?`` with units from :data:`UNIT_TOKENS`
    (case-insensitive). Examples: ``w``, ``f/m``, ``j/bit``, ``s/m^2``,
    ``ohm*m``, ``1``.

    Raises:
        ValueError: On an unknown unit token or malformed expression.
    """
    result: DimValue = DIMENSIONLESS
    op = "*"
    text = text.strip()
    if not text:
        raise ValueError("empty unit expression")
    token = ""
    tokens: list[str] = []
    for char in text:
        if char in "*/":
            tokens.append(token)
            tokens.append(char)
            token = ""
        else:
            token += char
    tokens.append(token)
    for i, item in enumerate(tokens):
        item = item.strip()
        if i % 2:  # operator slot
            if item not in "*/":
                raise ValueError(f"expected '*' or '/', got {item!r}")
            op = item
            continue
        name, _, exp_text = item.partition("^")
        name = name.strip().lower()
        if name not in UNIT_TOKENS:
            known = ", ".join(sorted(UNIT_TOKENS))
            raise ValueError(f"unknown unit {name!r}; known units: {known}")
        term: DimValue = UNIT_TOKENS[name]
        if exp_text:
            try:
                term = power(term, int(exp_text.strip()))
            except ValueError as exc:
                raise ValueError(
                    f"bad exponent {exp_text.strip()!r} on unit {name!r}"
                ) from exc
        result = mul(result, term) if op == "*" else div(result, term)
    assert isinstance(result, Dim)
    return result
