"""Whole-program dimensional analysis (``DIM001``–``DIM004``).

Public entry point: :func:`analyze_dimensions` builds the project call
graph from the lint context, solves parameter/return dimension facts to
a fixpoint, and re-checks the requested target modules with frozen
facts. See :mod:`repro.analysis.dimensional.dim` for the lattice and
:mod:`repro.analysis.dimensional.engine` for the transfer functions.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.context import ModuleSource
from repro.analysis.dimensional.callgraph import Project, build_project
from repro.analysis.dimensional.dim import (
    ANY,
    DIMENSIONLESS,
    Dim,
    DimValue,
    POLY,
    UNKNOWN,
    format_dim,
    parse_unit_expr,
)
from repro.analysis.dimensional.engine import (
    MAX_PASSES,
    check_module,
    solve_fixpoint,
)
from repro.analysis.dimensional.seeds import (
    CONSTANT_DIMS,
    SUFFIX_DIMS,
    suffix_dim,
)
from repro.analysis.finding import Finding

__all__ = [
    "ANY",
    "CONSTANT_DIMS",
    "DIMENSIONLESS",
    "Dim",
    "DimValue",
    "MAX_PASSES",
    "POLY",
    "Project",
    "SUFFIX_DIMS",
    "UNKNOWN",
    "analyze_dimensions",
    "build_project",
    "check_module",
    "format_dim",
    "parse_unit_expr",
    "solve_fixpoint",
    "suffix_dim",
]


def analyze_dimensions(
    targets: Iterable[ModuleSource],
    context: Iterable[ModuleSource],
    project: Project | None = None,
) -> dict[str, list[Finding]]:
    """Run the dimensional pass and report findings for ``targets``.

    ``context`` is every parsed module the call graph may cross into
    (typically the whole installed package plus the explicit targets);
    ``targets`` is the subset whose findings the caller wants. Pass a
    prebuilt ``project`` (the registry's shared call graph) to skip the
    collection pre-pass. Returns a mapping of target path -> sorted
    findings.
    """
    target_list = list(targets)
    if project is None:
        project = build_project(list(context))
    solve_fixpoint(project)
    results: dict[str, list[Finding]] = {}
    for source in target_list:
        if source.path not in project.modules:
            results[source.path] = []
            continue
        results[source.path] = sorted(check_module(project, source.path))
    return results
