"""Project-wide symbol collection for the dimensional analysis.

One cheap pre-pass over every parsed module builds the structures the
inference engine consumes: every function/method definition with its
parameter and return *pins* (suffix- or annotation-derived dimensions),
every class with its field pins, per-module import maps for call
resolution, and name-indexed views used for duck-typed attribute
resolution when the receiver's class is statically unknown.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.context import ModuleSource
from repro.analysis.dimensional.dim import UNKNOWN, Dim, DimValue
from repro.analysis.dimensional.seeds import (
    CONSTANT_DIMS,
    DimComments,
    parse_dim_comments,
    suffix_dim,
)


@dataclass  # repro: noqa[SPEC001] -- mutable fixpoint fact table
class ParamSlot:
    """One formal parameter of a collected function.

    ``pin`` is the seeded dimension (annotation beats suffix); ``value``
    is the call-site join the fixpoint accumulates for unpinned params.
    """

    name: str
    pin: Dim | None
    value: DimValue = UNKNOWN

    @property
    def dim(self) -> DimValue:
        return self.pin if self.pin is not None else self.value


@dataclass  # repro: noqa[SPEC001] -- mutable fixpoint fact table
class FunctionInfo:
    """One function/method definition and its evolving dimension facts."""

    qualname: str
    module_qual: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[ParamSlot]
    return_pin: Dim | None
    self_name: str | None = None  # bound receiver name for methods
    class_qual: str | None = None
    is_property: bool = False
    return_value: DimValue = UNKNOWN

    @property
    def return_dim(self) -> DimValue:
        return self.return_pin if self.return_pin is not None \
            else self.return_value

    @property
    def bindable(self) -> list[ParamSlot]:
        """Parameters that call arguments bind to (receiver excluded)."""
        if self.self_name is not None:
            return self.params[1:]
        return self.params


@dataclass  # repro: noqa[SPEC001] -- mutable fixpoint fact table
class ClassInfo:
    """One class definition: field pins plus its methods by name."""

    qualname: str
    name: str
    module_qual: str
    fields: dict[str, Dim | None] = field(default_factory=dict)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass  # repro: noqa[SPEC001] -- mutable fixpoint fact table
class ModuleInfo:
    """One module's contribution to the project tables."""

    qualname: str
    path: str
    tree: ast.Module
    comments: DimComments
    # local name -> ("module", qualname) or ("symbol", qualname)
    imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    # module-level constant dims, filled by the engine's constant pass
    constants: dict[str, DimValue] = field(default_factory=dict)


@dataclass  # repro: noqa[SPEC001] -- mutable fixpoint fact table
class Project:
    """Everything the inference engine knows about the code base."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)  # by path
    by_qual: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    class_by_name: dict[str, list[ClassInfo]] = field(default_factory=dict)
    #: method/property name -> definitions, for duck-typed resolution
    attr_funcs: dict[str, list[FunctionInfo]] = field(default_factory=dict)
    #: field name -> pins across all classes
    attr_fields: dict[str, list[Dim | None]] = field(default_factory=dict)
    #: module-level function name -> definitions
    func_by_name: dict[str, list[FunctionInfo]] = field(default_factory=dict)

    def constant_dim(self, module_qual: str, name: str) -> DimValue | None:
        """Dim of ``module_qual.name`` if it is a known module constant."""
        if module_qual == "repro.units" and name in CONSTANT_DIMS:
            return CONSTANT_DIMS[name]
        info = self.by_qual.get(module_qual)
        if info is not None and name in info.constants:
            return info.constants[name]
        return None


def module_qualname(path: str) -> str:
    """Dotted module name for a file path (``repro.tech.wire``).

    Falls back to the file stem for paths outside the package (test
    files, in-memory snippets).
    """
    parts = list(Path(path).with_suffix("").parts)
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[start:]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)
    stem = Path(path).stem or "snippet"
    return "".join(c if c.isalnum() or c == "_" else "_" for c in stem)


_PROPERTY_DECORATORS = frozenset({"property", "cached_property"})


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _signature_pins(
    node: ast.FunctionDef | ast.AsyncFunctionDef, comments: DimComments
) -> dict[str, Dim]:
    """dim[] annotations attached to a def's signature lines."""
    last = node.body[0].lineno - 1 if node.body else node.lineno
    return comments.in_range(node.lineno, max(node.lineno, last))


def _collect_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleInfo,
    owner: ClassInfo | None,
    qual_prefix: str,
) -> FunctionInfo:
    pins = _signature_pins(node, module.comments)
    decorators = _decorator_names(node)
    args = node.args
    formals = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    params = []
    for arg in formals:
        pin = pins.get(arg.arg)
        if pin is None:
            pin = suffix_dim(arg.arg)
        params.append(ParamSlot(name=arg.arg, pin=pin))
    self_name = None
    if owner is not None and formals and not (
        {"staticmethod", "classmethod"} & decorators
    ):
        self_name = formals[0].arg
    return_pin = pins.get("return")
    if return_pin is None:
        return_pin = suffix_dim(node.name)
    return FunctionInfo(
        qualname=f"{qual_prefix}.{node.name}",
        module_qual=module.qualname,
        node=node,
        params=params,
        return_pin=return_pin,
        self_name=self_name,
        class_qual=owner.qualname if owner is not None else None,
        is_property=bool(_PROPERTY_DECORATORS & decorators),
    )


def _collect_imports(tree: ast.Module, imports: dict[str, tuple[str, str]]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = ("module", alias.name)
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = ("module", head)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = ("symbol", f"{base}.{alias.name}")


def _register_function(project: Project, info: FunctionInfo) -> None:
    project.functions[info.qualname] = info
    terminal = info.node.name
    if info.class_qual is None:
        project.func_by_name.setdefault(terminal, []).append(info)
    else:
        project.attr_funcs.setdefault(terminal, []).append(info)


def _collect_body(
    project: Project,
    module: ModuleInfo,
    body: list[ast.stmt],
    owner: ClassInfo | None,
    qual_prefix: str,
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _collect_function(stmt, module, owner, qual_prefix)
            if owner is not None:
                owner.methods[stmt.name] = info
            _register_function(project, info)
            # Nested defs become plain functions; the receiver context
            # does not propagate into them.
            _collect_body(project, module, stmt.body, None, info.qualname)
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassInfo(
                qualname=f"{qual_prefix}.{stmt.name}",
                name=stmt.name,
                module_qual=module.qualname,
            )
            project.classes[cls.qualname] = cls
            project.class_by_name.setdefault(stmt.name, []).append(cls)
            for inner in stmt.body:
                if isinstance(inner, ast.AnnAssign) and isinstance(
                    inner.target, ast.Name
                ):
                    name = inner.target.id
                    line_pins = module.comments.in_range(
                        inner.lineno, inner.end_lineno or inner.lineno
                    )
                    pin = line_pins.get(name) or suffix_dim(name)
                    cls.fields[name] = pin
                    project.attr_fields.setdefault(name, []).append(pin)
            _collect_body(project, module, stmt.body, cls, cls.qualname)


def build_project(modules: list[ModuleSource]) -> Project:
    """Collect symbols from every parsed module."""
    project = Project()
    seen_ids: set[int] = set()
    for source in modules:
        if id(source) in seen_ids:
            continue
        seen_ids.add(id(source))
        qualname = module_qualname(source.path)
        while qualname in project.by_qual:
            qualname += "_"
        info = ModuleInfo(
            qualname=qualname,
            path=source.path,
            tree=source.tree,
            comments=parse_dim_comments(source.source),
        )
        _collect_imports(source.tree, info.imports)
        project.modules[source.path] = info
        project.by_qual[qualname] = info
        _collect_body(project, info, source.tree.body, None, qualname)
    return project
