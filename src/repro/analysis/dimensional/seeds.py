"""Seed facts for the dimensional analysis.

Inference starts from three seed sources, in increasing precedence:

1. The canonical unit-suffix convention already enforced by ``UNIT001``
   (``_s``, ``_w``, ``_j``, ``_f``, ``_m``, ``_m2``, ``_v``, ``_a``,
   ``_ohm``, ``_k``, ``_hz``): any identifier — variable, parameter,
   dataclass field, or function name — carrying a suffix is *pinned* to
   that dimension.
2. The helper constants in :mod:`repro.units` (``FF`` is farads, ``GHZ``
   is hertz, ...), via :data:`CONSTANT_DIMS`.
3. Explicit ``# repro: dim[name: unit, return: unit]`` annotation
   comments for the handful of signatures inference cannot reach
   (unsuffixed properties like ``Technology.feature_size``, per-length
   densities like ``F/m`` that have no suffix spelling).

An annotation pin beats a suffix pin on the same name, and both beat
inference: pinned names are what call sites and assignments are checked
*against*.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.dimensional.dim import (
    AMPERE,
    BIT,
    Dim,
    FARAD,
    HERTZ,
    JOULE,
    KELVIN,
    METER,
    OHM,
    SECOND,
    SQUARE_METER,
    VOLT,
    WATT,
    div,
    parse_unit_expr,
)

#: Canonical identifier suffix -> dimension. ``m2`` before ``m`` so the
#: longest suffix wins.
SUFFIX_DIMS: dict[str, Dim] = {
    "m2": SQUARE_METER,
    "s": SECOND,
    "w": WATT,
    "j": JOULE,
    "f": FARAD,
    "m": METER,
    "v": VOLT,
    "a": AMPERE,
    "ohm": OHM,
    "k": KELVIN,
    "hz": HERTZ,
}

#: Dimension of every numeric constant exported by :mod:`repro.units`.
#: The unit-constants test asserts this table and the module agree
#: member-for-member.
CONSTANT_DIMS: dict[str, Dim] = {
    "NM": METER, "UM": METER, "MM": METER,
    "UM2": SQUARE_METER, "MM2": SQUARE_METER,
    "PS": SECOND, "NS": SECOND, "US": SECOND,
    "MHZ": HERTZ, "GHZ": HERTZ,
    "FF": FARAD, "PF": FARAD, "AF": FARAD,
    "FJ": JOULE, "PJ": JOULE, "NJ": JOULE,
    "UA": AMPERE, "MA": AMPERE,
    "KOHM": OHM,
    "MW": WATT, "UW": WATT,
    "MV": VOLT,
    "KB": BIT, "MB": BIT, "GB": BIT,
    "BOLTZMANN_EV": div(JOULE, KELVIN),  # eV/K: energy per temperature
    "ROOM_TEMPERATURE_K": KELVIN,
    "EPSILON_0": div(FARAD, METER),
    "EPSILON_SIO2": div(FARAD, METER),
}


def suffix_dim(name: str) -> Dim | None:
    """Dimension pinned by ``name``'s unit suffix, if it has one.

    Matching is case-insensitive so module constants
    (``DEFAULT_TEMPERATURE_K``) participate. Rate and conversion names
    are exempt, mirroring ``UNIT001``: in ``reads_per_s`` or
    ``celsius_to_kelvin`` the trailing unit is a denominator or target,
    not the unit of the stored quantity.
    """
    low = name.lower()
    for suffix, dimension in SUFFIX_DIMS.items():
        if not low.endswith("_" + suffix):
            continue
        stem = low[: -len(suffix) - 1]
        if stem in ("per", "to") or stem.endswith(("_per", "_to")):
            return None
        return dimension
    return None


_DIM_RE = re.compile(r"#\s*repro:\s*dim\[(?P<body>[^\]]*)\]")


@dataclass(frozen=True)
class DimComments:
    """Per-file ``# repro: dim[...]`` annotation table.

    Attributes:
        by_line: 1-based line -> {name: pinned dimension}; the key
            ``"return"`` pins a function's return dimension when the
            comment sits in its signature.
        errors: (line, message) pairs for malformed annotations,
            reported by the runner as ``DIMNOTE`` findings rather than
            silently ignored.
    """

    by_line: dict[int, dict[str, Dim]] = field(default_factory=dict)
    errors: list[tuple[int, str]] = field(default_factory=list)

    def in_range(self, first: int, last: int) -> dict[str, Dim]:
        """Merged annotations over an inclusive line range."""
        merged: dict[str, Dim] = {}
        for line in range(first, last + 1):
            merged.update(self.by_line.get(line, {}))
        return merged


def parse_dim_comments(source: str) -> DimComments:
    """Scan a module's source for dimension annotations.

    Annotations are comments, found with :mod:`tokenize` so mentions in
    strings and docstrings are ignored. Each binds one or more names on
    its line: ``# repro: dim[cap: f, return: s]``.
    """
    table = DimComments()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table  # unparseable file: runner reports SYNTAX instead
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIM_RE.search(tok.string)
        if match is None:
            continue
        lineno = tok.start[0]
        entries = table.by_line.setdefault(lineno, {})
        for item in match.group("body").split(","):
            item = item.strip()
            if not item:
                continue
            name, sep, unit_text = item.partition(":")
            name = name.strip()
            if not sep or not name.isidentifier():
                table.errors.append(
                    (lineno, f"malformed dim annotation entry {item!r}; "
                             "expected 'name: unit'")
                )
                continue
            try:
                entries[name] = parse_unit_expr(unit_text)
            except ValueError as exc:
                table.errors.append((lineno, str(exc)))
    return table
