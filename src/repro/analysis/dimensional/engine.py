"""Interprocedural dimension inference and consistency checking.

The engine runs in three phases over the :class:`Project` tables:

1. **Constant pass** — module-level assignments are abstractly evaluated
   (twice, for cross-module imports) so ``EPSILON_SIO2 = 3.9 * EPSILON_0``
   picks up F/m from the :mod:`repro.units` seed table.
2. **Fixpoint pass** — every function body is abstractly evaluated;
   call sites bind argument dimensions into unpinned callee parameters
   and return expressions join into the callee's return fact. Facts only
   climb the lattice (UNKNOWN -> POLY -> concrete -> ANY), and the pass
   repeats until a full sweep changes nothing (or a safety cap).
3. **Check pass** — target modules are evaluated once more with frozen
   facts, emitting findings with the inference chain that produced each
   conflicting dimension:

   * ``DIM001`` incompatible addition/subtraction/comparison/min/max,
   * ``DIM002`` return or ``dim[...]``-annotation mismatch,
   * ``DIM003`` a unit suffix contradicted by the inferred dimension,
   * ``DIM004`` dimension mismatch at a call boundary (a dimensioned
     quantity where dimensionless is expected, a wrong-dimension
     argument for a pinned parameter, a dimensioned exponent).

Everything the inference cannot prove stays silent: only concrete-vs-
concrete disagreements are reported.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.dimensional import callgraph
from repro.analysis.dimensional.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.analysis.dimensional.dim import (
    ANY,
    DIMENSIONLESS,
    Dim,
    DimValue,
    POLY,
    UNKNOWN,
    compatible,
    div,
    format_dim,
    inverse,
    join,
    mul,
    power,
    sqrt,
)
from repro.analysis.dimensional.seeds import suffix_dim
from repro.analysis.finding import Finding

#: Safety cap on fixpoint sweeps; real call chains converge in 3-5.
MAX_PASSES = 12

#: Math functions that demand a dimensionless argument and return one.
_MATH_DIMENSIONLESS = frozenset({
    "exp", "expm1", "log", "log1p", "log2", "log10",
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
    "sinh", "cosh", "tanh", "asinh", "acosh", "atanh",
    "erf", "erfc", "degrees", "radians",
})

#: Math functions that preserve their first argument's dimension.
_MATH_PASSTHROUGH = frozenset({
    "fabs", "floor", "ceil", "trunc", "copysign", "fmod", "remainder",
})

_BIN_OP_SYMBOLS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**",
}

_COMPARE_SYMBOLS = {
    ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
    ast.Eq: "==", ast.NotEq: "!=",
}


class _SelfRef:
    """Marker for a method's bound receiver."""

    __slots__ = ("cls",)

    def __init__(self, cls: ClassInfo | None) -> None:
        self.cls = cls


class _Seq:
    """Marker for a comprehension/generator: carries the element dim."""

    __slots__ = ("elem", "why")

    def __init__(self, elem: DimValue, why: str | None) -> None:
        self.elem = elem
        self.why = why


_Abstract = DimValue | _SelfRef | _Seq


def _as_dim(value: _Abstract) -> DimValue:
    """Collapse non-dimension markers at operator boundaries."""
    if isinstance(value, (_SelfRef, _Seq)):
        return UNKNOWN
    return value


class _Evaluator:
    """Abstract interpreter for one function body or module top level.

    In *summary* mode it updates the project facts (parameter and return
    joins) and reports nothing. In *check* mode facts are frozen and
    conflicts become findings with inference-chain messages.
    """

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        function: FunctionInfo | None,
        check: bool,
        findings: list[Finding] | None = None,
    ) -> None:
        self.project = project
        self.module = module
        self.function = function
        self.check = check
        self.findings = findings if findings is not None else []
        self.changed = False
        self.env: dict[str, _Abstract] = {}
        self.return_sites: list[tuple[ast.Return, DimValue, str | None]] = []
        self.self_class: ClassInfo | None = None
        if function is not None:
            if function.class_qual is not None:
                self.self_class = project.classes.get(function.class_qual)
            if function.self_name is not None:
                self.env[function.self_name] = _SelfRef(self.self_class)
            start = 1 if function.self_name is not None else 0
            for slot in function.params[start:]:
                self.env[slot.name] = slot.dim

    # -- reporting --------------------------------------------------------

    def _report(
        self, node: ast.AST, rule: str, message: str
    ) -> None:
        if not self.check:
            return
        self.findings.append(Finding(
            self.module.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            rule,
            message,
        ))

    @staticmethod
    def _chain(why: str | None, fallback: str = "expression") -> str:
        if why is None:
            return fallback
        if len(why) > 160:
            why = why[:157] + "..."
        return why

    # -- fact updates -----------------------------------------------------

    def _join_param(self, slot: callgraph.ParamSlot, value: DimValue) -> None:
        if self.check or slot.pin is not None:
            return
        new = join(slot.value, value)
        if new != slot.value:
            slot.value = new
            self.changed = True

    def _join_return(self, fn: FunctionInfo, value: DimValue) -> None:
        if self.check or fn.return_pin is not None:
            return
        new = join(fn.return_value, value)
        if new != fn.return_value:
            fn.return_value = new
            self.changed = True

    # -- statements -------------------------------------------------------

    def run_body(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign_stmt(stmt, stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_stmt(stmt, [stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self.run_body(stmt.body)
            self.run_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self._eval(stmt.iter)[0]
            elem = iter_value.elem if isinstance(iter_value, _Seq) else UNKNOWN
            self._bind_target(stmt, stmt.target, elem, None)
            self.run_body(stmt.body)
            self.run_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self.run_body(stmt.body)
            self.run_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(stmt, item.optional_vars, UNKNOWN, None)
            self.run_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = UNKNOWN
                self.run_body(handler.body)
            self.run_body(stmt.orelse)
            self.run_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
        # Defs/classes are collected separately; imports, pass, del,
        # globals and control-flow keywords carry no dimension facts.

    def _assign_stmt(
        self, stmt: ast.stmt, targets: list[ast.expr], value: ast.expr
    ) -> None:
        # Elementwise tuple assignment keeps per-element dims (and avoids
        # evaluating the value twice, which would duplicate findings).
        if (
            len(targets) == 1
            and isinstance(targets[0], (ast.Tuple, ast.List))
            and isinstance(value, ast.Tuple)
            and len(targets[0].elts) == len(value.elts)
        ):
            for target_elt, value_elt in zip(targets[0].elts, value.elts):
                elt_value, elt_why = self._eval(value_elt)
                self._bind_target(stmt, target_elt, elt_value, elt_why)
            return
        inferred, why = self._eval(value)
        for target in targets:
            self._bind_target(stmt, target, inferred, why)

    def _bind_target(
        self,
        stmt: ast.stmt,
        target: ast.expr,
        value: _Abstract,
        why: str | None,
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(stmt, target, target.id, value, why)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(stmt, elt, UNKNOWN, None)
        elif isinstance(target, ast.Attribute):
            self._eval(target.value)
            pin = self._self_field_pin(target)
            dim_value = _as_dim(value)
            if (
                pin is not None
                and isinstance(dim_value, Dim)
                and dim_value != pin
            ):
                self._report(
                    stmt, "DIM003",
                    f"attribute {target.attr!r} pins "
                    f"'{format_dim(pin)}' but is assigned "
                    f"'{format_dim(dim_value)}': "
                    f"{self._chain(why)}",
                )
        elif isinstance(target, ast.Subscript):
            self._eval(target.value)
            self._eval(target.slice)

    def _self_field_pin(self, target: ast.Attribute) -> Dim | None:
        if not (
            isinstance(target.value, ast.Name)
            and isinstance(self.env.get(target.value.id), _SelfRef)
        ):
            return None
        ref = self.env[target.value.id]
        assert isinstance(ref, _SelfRef)
        if ref.cls is not None and target.attr in ref.cls.fields:
            return ref.cls.fields[target.attr]
        return suffix_dim(target.attr)

    def _line_pins(self, stmt: ast.stmt) -> dict[str, Dim]:
        return self.module.comments.in_range(
            stmt.lineno, stmt.end_lineno or stmt.lineno
        )

    def _bind_name(
        self,
        stmt: ast.stmt,
        node: ast.AST,
        name: str,
        value: _Abstract,
        why: str | None,
    ) -> None:
        pins = self._line_pins(stmt)
        pin = pins.get(name)
        rule = "DIM002"  # explicit annotation contradicted
        if pin is None:
            pin = suffix_dim(name)
            rule = "DIM003"  # suffix contradicted
        dim_value = _as_dim(value)
        if pin is not None:
            if isinstance(dim_value, Dim) and dim_value != pin:
                kind = (
                    "is annotated" if rule == "DIM002"
                    else "has a unit suffix pinning"
                )
                self._report(
                    node, rule,
                    f"name {name!r} {kind} '{format_dim(pin)}' but the "
                    f"assigned expression infers "
                    f"'{format_dim(dim_value)}': {self._chain(why)}",
                )
            self.env[name] = pin
        else:
            self.env[name] = value

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        value, why = self._eval(stmt.value)
        if not isinstance(stmt.target, ast.Name):
            if isinstance(stmt.target, ast.Attribute):
                self._eval(stmt.target.value)
            return
        name = stmt.target.id
        current = _as_dim(self.env.get(name, suffix_dim(name) or UNKNOWN))
        dim_value = _as_dim(value)
        op = stmt.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if not compatible(current, dim_value):
                self._report(
                    stmt, "DIM001",
                    f"incompatible dimensions for "
                    f"'{_BIN_OP_SYMBOLS[type(op)]}=': {name!r} is "
                    f"'{format_dim(current)}' but the operand is "
                    f"'{format_dim(dim_value)}' ({self._chain(why)})",
                )
                result: DimValue = ANY
            else:
                result = join(current, dim_value)
        elif isinstance(op, ast.Mult):
            result = mul(current, dim_value)
        elif isinstance(op, (ast.Div, ast.FloorDiv)):
            result = div(current, dim_value)
        else:
            result = UNKNOWN
        self._bind_name(stmt, stmt, name, result, why)

    def _return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        value, why = self._eval(stmt.value)
        dim_value = _as_dim(value)
        self.return_sites.append((stmt, dim_value, why))
        fn = self.function
        if fn is None:
            return
        if fn.return_pin is not None:
            if isinstance(dim_value, Dim) and dim_value != fn.return_pin:
                self._report(
                    stmt, "DIM002",
                    f"function {fn.node.name!r} pins its return "
                    f"dimension to '{format_dim(fn.return_pin)}' but "
                    f"this return infers "
                    f"'{format_dim(dim_value)}': {self._chain(why)}",
                )
        else:
            self._join_return(fn, dim_value)

    # -- expressions ------------------------------------------------------

    def _eval(self, node: ast.expr) -> tuple[_Abstract, str | None]:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Conservative fallback: evaluate children for their checks.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return UNKNOWN, None

    def _dim_why(self, value: _Abstract, label: str) -> str | None:
        if not self.check:
            return None
        dim_value = _as_dim(value)
        if isinstance(dim_value, Dim):
            return f"{label}:{format_dim(dim_value)}"
        return label

    def _eval_Constant(self, node: ast.Constant) -> tuple[_Abstract, str | None]:
        if isinstance(node.value, (int, float, complex)) and not isinstance(
            node.value, bool
        ):
            return POLY, (repr(node.value) if self.check else None)
        if isinstance(node.value, bool):
            return POLY, None
        return UNKNOWN, None

    def _eval_Name(self, node: ast.Name) -> tuple[_Abstract, str | None]:
        name = node.id
        if name in self.env:
            value = self.env[name]
            return value, self._dim_why(value, name)
        constant = self.project.constant_dim(self.module.qualname, name)
        if constant is not None:
            return constant, self._dim_why(constant, name)
        imported = self.module.imports.get(name)
        if imported is not None and imported[0] == "symbol":
            module_qual, _, symbol = imported[1].rpartition(".")
            constant = self.project.constant_dim(module_qual, symbol)
            if constant is not None:
                return constant, self._dim_why(constant, name)
            if self._resolve_symbol(imported[1]) is not None:
                return UNKNOWN, None  # class/function object as a value
        pinned = suffix_dim(name)
        if pinned is not None:
            return pinned, self._dim_why(pinned, name)
        return UNKNOWN, None

    def _eval_Attribute(self, node: ast.Attribute) -> tuple[_Abstract, str | None]:
        module_qual = self._module_chain(node.value)
        if module_qual is not None:
            if module_qual == "math":
                return POLY, None  # math.pi, math.e, math.inf, ...
            constant = self.project.constant_dim(module_qual, node.attr)
            if constant is not None:
                return constant, self._dim_why(constant, node.attr)
            return UNKNOWN, None
        value, _ = self._eval(node.value)
        if isinstance(value, _SelfRef) and value.cls is not None:
            cls = value.cls
            if node.attr in cls.fields:
                pin = cls.fields[node.attr]
                if pin is not None:
                    return pin, self._dim_why(pin, f"self.{node.attr}")
                return UNKNOWN, None
            method = cls.methods.get(node.attr)
            if method is not None:
                if method.is_property:
                    result = method.return_dim
                    return result, self._dim_why(result, f"self.{node.attr}")
                return UNKNOWN, None  # bound method object
        pinned = suffix_dim(node.attr)
        if pinned is not None:
            return pinned, self._dim_why(pinned, node.attr)
        duck = self._duck_attr(node.attr)
        return duck, self._dim_why(duck, node.attr)

    def _duck_attr(self, attr: str) -> DimValue:
        """Join every project-wide field/property of this name.

        A concrete agreement across all definitions is trusted; any
        disagreement or gap collapses to UNKNOWN.
        """
        joined: DimValue = UNKNOWN
        for pin in self.project.attr_fields.get(attr, ()):
            if pin is None:
                return UNKNOWN
            joined = join(joined, pin)
        for fn in self.project.attr_funcs.get(attr, ()):
            if not fn.is_property:
                continue
            joined = join(joined, fn.return_dim)
        if isinstance(joined, Dim):
            return joined
        return UNKNOWN

    def _module_chain(self, node: ast.expr) -> str | None:
        """Resolve a dotted module reference (``repro.units``), if any."""
        if isinstance(node, ast.Name):
            imported = self.module.imports.get(node.id)
            if imported is not None and imported[0] == "module":
                return imported[1]
            return None
        if isinstance(node, ast.Attribute):
            base = self._module_chain(node.value)
            if base is not None:
                candidate = f"{base}.{node.attr}"
                if candidate in self.project.by_qual or base == "repro":
                    return candidate
        return None

    def _eval_BinOp(self, node: ast.BinOp) -> tuple[_Abstract, str | None]:
        left, left_why = self._eval(node.left)
        right, right_why = self._eval(node.right)
        left_dim, right_dim = _as_dim(left), _as_dim(right)
        symbol = _BIN_OP_SYMBOLS.get(type(node.op))
        why = None
        if self.check and symbol is not None and (
            left_why is not None or right_why is not None
        ):
            parts = []
            for part in (left_why or "?", right_why or "?"):
                if symbol not in ("+", "-") and (
                    " + " in part or " - " in part
                ):
                    part = f"({part})"
                parts.append(part)
            why = f"{parts[0]} {symbol} {parts[1]}"
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if not compatible(left_dim, right_dim):
                self._report(
                    node, "DIM001",
                    f"incompatible dimensions for '{symbol}': left is "
                    f"'{format_dim(left_dim)}' "
                    f"({self._chain(left_why, 'left operand')}), right is "
                    f"'{format_dim(right_dim)}' "
                    f"({self._chain(right_why, 'right operand')})",
                )
                return ANY, why
            return join(left_dim, right_dim), why
        if isinstance(node.op, ast.Mult):
            return mul(left_dim, right_dim), why
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return div(left_dim, right_dim), why
        if isinstance(node.op, ast.Mod):
            if compatible(left_dim, right_dim) and isinstance(left_dim, Dim):
                return join(left_dim, right_dim), why
            return UNKNOWN, None
        if isinstance(node.op, ast.Pow):
            return self._pow(node, left_dim, node.right, right_dim), why
        return UNKNOWN, None

    def _pow(
        self,
        node: ast.expr,
        base: DimValue,
        exponent_node: ast.expr,
        exponent: DimValue,
    ) -> DimValue:
        if isinstance(exponent, Dim) and not exponent.is_dimensionless:
            self._report(
                node, "DIM004",
                f"exponent of '**' must be dimensionless, got "
                f"'{format_dim(exponent)}'",
            )
            return UNKNOWN
        literal = None
        if isinstance(exponent_node, ast.Constant) and isinstance(
            exponent_node.value, (int, float)
        ):
            literal = exponent_node.value
        elif (
            isinstance(exponent_node, ast.UnaryOp)
            and isinstance(exponent_node.op, ast.USub)
            and isinstance(exponent_node.operand, ast.Constant)
            and isinstance(exponent_node.operand.value, (int, float))
        ):
            literal = -exponent_node.operand.value
        if literal is not None:
            if float(literal).is_integer():
                return power(base, int(literal))
            doubled = float(literal) * 2.0
            if doubled.is_integer() and abs(int(doubled)) == 1:
                root = sqrt(base)
                return root if literal > 0 else inverse(root)
        if base is POLY or (isinstance(base, Dim) and base.is_dimensionless):
            return base
        return UNKNOWN

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> tuple[_Abstract, str | None]:
        value, why = self._eval(node.operand)
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            return value, why
        if isinstance(node.op, ast.Not):
            return POLY, None
        return value, why

    def _eval_BoolOp(self, node: ast.BoolOp) -> tuple[_Abstract, str | None]:
        joined: DimValue = UNKNOWN
        for value_node in node.values:
            value, _ = self._eval(value_node)
            joined = join(joined, _as_dim(value))
        if isinstance(joined, Dim):
            return joined, None
        return UNKNOWN, None

    def _eval_Compare(self, node: ast.Compare) -> tuple[_Abstract, str | None]:
        left, left_why = self._eval(node.left)
        left_dim = _as_dim(left)
        for op, comparator in zip(node.ops, node.comparators):
            right, right_why = self._eval(comparator)
            right_dim = _as_dim(right)
            symbol = _COMPARE_SYMBOLS.get(type(op))
            if symbol is not None and not compatible(left_dim, right_dim):
                self._report(
                    node, "DIM001",
                    f"incompatible dimensions for '{symbol}': left is "
                    f"'{format_dim(left_dim)}' "
                    f"({self._chain(left_why, 'left operand')}), right is "
                    f"'{format_dim(right_dim)}' "
                    f"({self._chain(right_why, 'right operand')})",
                )
            left_dim, left_why = right_dim, right_why
        return POLY, None

    def _eval_IfExp(self, node: ast.IfExp) -> tuple[_Abstract, str | None]:
        self._eval(node.test)
        body, body_why = self._eval(node.body)
        orelse, _ = self._eval(node.orelse)
        return join(_as_dim(body), _as_dim(orelse)), body_why

    def _eval_NamedExpr(self, node: ast.NamedExpr) -> tuple[_Abstract, str | None]:
        value, why = self._eval(node.value)
        if isinstance(node.target, ast.Name):
            self._bind_name(node, node, node.target.id, value, why)
        return value, why

    def _eval_Lambda(self, node: ast.Lambda) -> tuple[_Abstract, str | None]:
        saved = dict(self.env)
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self.env[arg.arg] = suffix_dim(arg.arg) or UNKNOWN
        self._eval(node.body)
        self.env = saved
        return UNKNOWN, None

    def _eval_Subscript(self, node: ast.Subscript) -> tuple[_Abstract, str | None]:
        self._eval(node.value)
        self._eval(node.slice)
        return UNKNOWN, None

    def _eval_Starred(self, node: ast.Starred) -> tuple[_Abstract, str | None]:
        self._eval(node.value)
        return UNKNOWN, None

    def _eval_Tuple(self, node: ast.Tuple) -> tuple[_Abstract, str | None]:
        for elt in node.elts:
            self._eval(elt)
        return UNKNOWN, None

    _eval_List = _eval_Tuple
    _eval_Set = _eval_Tuple

    def _eval_Dict(self, node: ast.Dict) -> tuple[_Abstract, str | None]:
        for key in node.keys:
            if key is not None:
                self._eval(key)
        for value in node.values:
            self._eval(value)
        return UNKNOWN, None

    def _eval_JoinedStr(self, node: ast.JoinedStr) -> tuple[_Abstract, str | None]:
        for part in node.values:
            if isinstance(part, ast.FormattedValue):
                self._eval(part.value)
        return UNKNOWN, None

    def _comprehension(self, node, elt: ast.expr | None) -> tuple[_Abstract, str | None]:
        saved = dict(self.env)
        for gen in node.generators:
            self._eval(gen.iter)
            self._bind_target(
                ast.Pass(lineno=node.lineno, end_lineno=node.lineno,
                         col_offset=0),
                gen.target, UNKNOWN, None,
            )
            for condition in gen.ifs:
                self._eval(condition)
        result: tuple[_Abstract, str | None] = (UNKNOWN, None)
        if elt is not None:
            elem, why = self._eval(elt)
            result = (_Seq(_as_dim(elem), why), why)
        self.env = saved
        return result

    def _eval_GeneratorExp(self, node: ast.GeneratorExp):
        return self._comprehension(node, node.elt)

    _eval_ListComp = _eval_GeneratorExp
    _eval_SetComp = _eval_GeneratorExp

    def _eval_DictComp(self, node: ast.DictComp):
        saved = dict(self.env)
        for gen in node.generators:
            self._eval(gen.iter)
            self._bind_target(
                ast.Pass(lineno=node.lineno, end_lineno=node.lineno,
                         col_offset=0),
                gen.target, UNKNOWN, None,
            )
            for condition in gen.ifs:
                self._eval(condition)
        self._eval(node.key)
        self._eval(node.value)
        self.env = saved
        return UNKNOWN, None

    # -- calls ------------------------------------------------------------

    def _eval_Call(self, node: ast.Call) -> tuple[_Abstract, str | None]:
        handler = self._call_special(node)
        if handler is not None:
            return handler
        target = self._resolve_call(node.func)
        arg_values = [self._eval(arg) for arg in node.args]
        kw_values = {
            kw.arg: self._eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs: evaluated, not bound
                self._eval(kw.value)
        if isinstance(target, FunctionInfo):
            self._bind_call(node, target, arg_values, kw_values)
            result = target.return_dim
            label = f"{target.node.name}(...)"
            return result, self._dim_why(result, label)
        if isinstance(target, ClassInfo):
            self._bind_constructor(node, target, arg_values, kw_values)
            return UNKNOWN, None
        if isinstance(target, list):  # ambiguous duck candidates
            joined: DimValue = UNKNOWN
            for candidate in target:
                joined = join(joined, candidate.return_dim)
            if isinstance(joined, Dim):
                name = getattr(node.func, "attr", "call")
                return joined, self._dim_why(joined, f"{name}(...)")
            return UNKNOWN, None
        return UNKNOWN, None

    def _bind_call(
        self,
        node: ast.Call,
        fn: FunctionInfo,
        arg_values: list[tuple[_Abstract, str | None]],
        kw_values: dict[str, tuple[_Abstract, str | None]],
    ) -> None:
        has_star = any(isinstance(arg, ast.Starred) for arg in node.args)
        slots = fn.bindable
        by_name = {slot.name: slot for slot in slots}
        bindings: list[tuple[callgraph.ParamSlot, tuple[_Abstract, str | None]]] = []
        if not has_star:
            for slot, value in zip(slots, arg_values):
                bindings.append((slot, value))
        for name, value in kw_values.items():
            slot = by_name.get(name)
            if slot is not None:
                bindings.append((slot, value))
        for slot, (value, why) in bindings:
            dim_value = _as_dim(value)
            if slot.pin is not None:
                if isinstance(dim_value, Dim) and dim_value != slot.pin:
                    self._report(
                        node, "DIM004",
                        f"parameter {slot.name!r} of {fn.node.name!r} "
                        f"expects '{format_dim(slot.pin)}' but the "
                        f"argument infers '{format_dim(dim_value)}': "
                        f"{self._chain(why)}",
                    )
            else:
                self._join_param(slot, dim_value)

    def _bind_constructor(
        self,
        node: ast.Call,
        cls: ClassInfo,
        arg_values: list[tuple[_Abstract, str | None]],
        kw_values: dict[str, tuple[_Abstract, str | None]],
    ) -> None:
        fields = list(cls.fields.items())
        has_star = any(isinstance(arg, ast.Starred) for arg in node.args)
        bindings: list[tuple[str, Dim | None, tuple[_Abstract, str | None]]] = []
        if not has_star:
            for (name, pin), value in zip(fields, arg_values):
                bindings.append((name, pin, value))
        for name, value in kw_values.items():
            if name in cls.fields:
                bindings.append((name, cls.fields[name], value))
        for name, pin, (value, why) in bindings:
            dim_value = _as_dim(value)
            if (
                pin is not None
                and isinstance(dim_value, Dim)
                and dim_value != pin
            ):
                self._report(
                    node, "DIM004",
                    f"field {name!r} of {cls.name!r} expects "
                    f"'{format_dim(pin)}' but the argument infers "
                    f"'{format_dim(dim_value)}': {self._chain(why)}",
                )

    def _call_special(self, node: ast.Call) -> tuple[_Abstract, str | None] | None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if self._module_chain(func.value) == "math":
                return self._math_call(node, func.attr)
            return None
        if not isinstance(func, ast.Name) or func.id in self.env:
            return None
        name = func.id
        if self._resolve_call(func) is not None:
            return None  # a project symbol shadows the builtin name
        if name in ("min", "max"):
            return self._min_max(node)
        if name == "sum":
            return self._sum(node)
        if name in ("abs", "round", "float", "int"):
            if len(node.args) >= 1:
                value, why = self._eval(node.args[0])
                for extra in node.args[1:]:
                    self._eval(extra)
                return value, why
            return UNKNOWN, None
        if name in ("sorted", "list", "tuple", "set", "reversed"):
            if len(node.args) >= 1:
                value, why = self._eval(node.args[0])
                for kw in node.keywords:
                    self._eval(kw.value)
                return value, why
            return UNKNOWN, None
        if name in ("len", "bool", "any", "all", "isinstance", "hash"):
            for arg in node.args:
                self._eval(arg)
            return POLY, None
        return None

    def _math_call(self, node: ast.Call, attr: str) -> tuple[_Abstract, str | None]:
        values = [self._eval(arg) for arg in node.args]
        dims = [_as_dim(v) for v, _ in values]
        whys = [w for _, w in values]
        if attr == "sqrt" and dims:
            root = sqrt(dims[0])
            why = f"sqrt({whys[0]})" if self.check and whys[0] else None
            return root, why
        if attr == "pow" and len(node.args) == 2:
            return self._pow(node, dims[0], node.args[1], dims[1]), None
        if attr in _MATH_DIMENSIONLESS:
            for (value, why), dim_value in zip(values, dims):
                if isinstance(dim_value, Dim) and not dim_value.is_dimensionless:
                    self._report(
                        node, "DIM004",
                        f"math.{attr} expects a dimensionless argument "
                        f"but got '{format_dim(dim_value)}' "
                        f"({self._chain(why)})",
                    )
            return DIMENSIONLESS, None
        if attr in _MATH_PASSTHROUGH and values:
            return values[0]
        if attr == "isclose" and len(dims) >= 2:
            if not compatible(dims[0], dims[1]):
                self._report(
                    node, "DIM001",
                    f"incompatible dimensions in math.isclose: "
                    f"'{format_dim(dims[0])}' "
                    f"({self._chain(whys[0], 'left')}) vs "
                    f"'{format_dim(dims[1])}' "
                    f"({self._chain(whys[1], 'right')})",
                )
            return POLY, None
        if attr in ("hypot", "fsum", "dist"):
            joined: DimValue = UNKNOWN
            for dim_value in dims:
                joined = join(joined, dim_value)
            return (joined if isinstance(joined, Dim) else UNKNOWN), None
        return POLY, None  # predicates, factorial, comb, ...

    def _min_max(self, node: ast.Call) -> tuple[_Abstract, str | None]:
        for kw in node.keywords:  # key=/default= never checked
            self._eval(kw.value)
        values = [self._eval(arg) for arg in node.args]
        if len(values) == 1:
            only = values[0][0]
            if isinstance(only, _Seq):
                return only.elem, only.why
            return _as_dim(only), values[0][1]
        result: DimValue = UNKNOWN
        result_why = None
        previous: tuple[DimValue, str | None] | None = None
        for value, why in values:
            dim_value = _as_dim(value)
            if previous is not None and not compatible(previous[0], dim_value):
                name = node.func.id if isinstance(node.func, ast.Name) else "?"
                self._report(
                    node, "DIM001",
                    f"incompatible dimensions across {name} arguments: "
                    f"'{format_dim(previous[0])}' "
                    f"({self._chain(previous[1], 'earlier argument')}) vs "
                    f"'{format_dim(dim_value)}' ({self._chain(why)})",
                )
            if isinstance(dim_value, Dim):
                previous = (dim_value, why)
            result = join(result, dim_value)
            if result_why is None and why is not None:
                result_why = why
        return result, result_why

    def _sum(self, node: ast.Call) -> tuple[_Abstract, str | None]:
        if not node.args:
            return UNKNOWN, None
        first, first_why = self._eval(node.args[0])
        if isinstance(first, _Seq):
            result, why = first.elem, first.why
        else:
            result, why = _as_dim(first), first_why
        for extra in node.args[1:]:
            extra_value, _ = self._eval(extra)
            result = join(result, _as_dim(extra_value))
        return result, why

    # -- call resolution --------------------------------------------------

    def _resolve_symbol(self, qualname: str) -> FunctionInfo | ClassInfo | None:
        found = self.project.functions.get(qualname)
        if found is not None:
            return found
        cls = self.project.classes.get(qualname)
        if cls is not None:
            return cls
        terminal = qualname.rsplit(".", 1)[-1]
        functions = self.project.func_by_name.get(terminal, [])
        if len(functions) == 1:
            return functions[0]
        candidates = self.project.class_by_name.get(terminal, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _resolve_call(
        self, func: ast.expr
    ) -> FunctionInfo | ClassInfo | list[FunctionInfo] | None:
        if isinstance(func, ast.Name):
            name = func.id
            local = self.project.functions.get(
                f"{self.module.qualname}.{name}"
            )
            if local is not None:
                return local
            local_cls = self.project.classes.get(
                f"{self.module.qualname}.{name}"
            )
            if local_cls is not None:
                return local_cls
            imported = self.module.imports.get(name)
            if imported is not None and imported[0] == "symbol":
                return self._resolve_symbol(imported[1])
            if self.function is not None:
                # Sibling nested def / method referenced without self.
                scoped = self.project.functions.get(
                    f"{self.function.qualname}.{name}"
                )
                if scoped is not None:
                    return scoped
            return None
        if isinstance(func, ast.Attribute):
            module_qual = self._module_chain(func.value)
            if module_qual is not None:
                return self._resolve_symbol(f"{module_qual}.{func.attr}")
            if (
                isinstance(func.value, ast.Name)
                and isinstance(self.env.get(func.value.id), _SelfRef)
            ):
                ref = self.env[func.value.id]
                assert isinstance(ref, _SelfRef)
                self._eval(func.value)
                if ref.cls is not None:
                    method = ref.cls.methods.get(func.attr)
                    if method is not None:
                        return method
            else:
                self._eval(func.value)
            methods = [
                fn for fn in self.project.attr_funcs.get(func.attr, [])
                if not fn.is_property
            ]
            if len(methods) == 1:
                return methods[0]
            if methods:
                return methods
            return None
        self._eval(func)
        return None


# -- project passes --------------------------------------------------------


def _constant_pass(project: Project) -> None:
    """Infer module-level constant dims (two sweeps for forward imports)."""
    for _ in range(2):
        for module in project.modules.values():
            evaluator = _Evaluator(project, module, None, check=False)
            evaluator.env = module.constants  # assignments land here
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    evaluator._stmt(stmt)


def _summary_pass(project: Project) -> bool:
    """One fixpoint sweep over every function; True if any fact moved."""
    changed = False
    for fn in project.functions.values():
        module = project.by_qual.get(fn.module_qual)
        if module is None:
            continue
        evaluator = _Evaluator(project, module, fn, check=False)
        evaluator.run_body(fn.node.body)
        changed = changed or evaluator.changed
    return changed


def solve_fixpoint(project: Project, max_passes: int = MAX_PASSES) -> int:
    """Iterate summary passes to a fixpoint; returns the pass count."""
    _constant_pass(project)
    for sweep in range(1, max_passes + 1):
        if not _summary_pass(project):
            return sweep
    return max_passes


def check_module(project: Project, path: str) -> list[Finding]:
    """Re-evaluate one module with frozen facts, collecting findings."""
    module = project.modules[path]
    findings: list[Finding] = []
    for line, message in module.comments.errors:
        findings.append(Finding(path, line, 0, "DIMNOTE", message))
    top = _Evaluator(project, module, None, check=True, findings=findings)
    top.env = dict(module.constants)
    for stmt in module.tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            top._stmt(stmt)
    for fn in project.functions.values():
        if fn.module_qual != module.qualname:
            continue
        evaluator = _Evaluator(project, module, fn, check=True,
                               findings=findings)
        evaluator.run_body(fn.node.body)
    return findings
