"""Execution-context inference for the concurrency analysis.

Every function in the project runs in one or more *execution contexts*:

* ``main`` — ordinary synchronous code (module import, the CLI, tests);
* ``event-loop`` — the body of an ``async def`` and every synchronous
  function it calls without an executor hop;
* ``executor-thread`` — targets of ``ThreadPoolExecutor.submit`` /
  ``loop.run_in_executor`` / ``threading.Thread`` and everything they
  call (an executor is *always* multi-threaded, so this context alone
  implies concurrent execution);
* ``fork-worker`` — targets of ``ProcessPoolExecutor.submit`` /
  ``multiprocessing.Process`` and ``os.register_at_fork``
  ``after_in_child`` callbacks (a separate address space: it does not
  race with the parent, but it *inherits* the parent's locks and file
  handles, which is what ``CONC003`` checks).

Contexts propagate along the project call graph (built by the
dimensional pass's :func:`~repro.analysis.dimensional.callgraph
.build_project`) to a fixpoint, including through *escaping callable
parameters*: when ``_admitted(work)`` hands ``work`` to
``run_in_executor``, every callable an outside caller binds to ``work``
is marked ``executor-thread`` — that is how the serve tier's evaluation
lambdas are tracked onto the executor.

Each context a node acquires carries a human-readable *why* chain
(``"submitted to a thread executor at app.py:357 by _admitted"``) that
the CONC rules embed in their findings, mirroring the DIM inference
chains.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dimensional.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)

#: Context names (values appear verbatim in findings).
MAIN = "main"
LOOP = "event-loop"
THREAD = "executor-thread"
FORK = "fork-worker"

#: Safety cap on fixpoint sweeps; real projects converge in 3-6.
MAX_PASSES = 24

#: Cap on duck-typed method resolution: a method name this ambiguous is
#: skipped rather than fanning context facts across unrelated classes.
_MAX_DUCK_CANDIDATES = 12

#: Method names shared with the builtin container/str protocols; an
#: attribute call with an *unknown* receiver type and one of these names
#: is almost always a dict/list/str operation, so duck-typed resolution
#: would wire unrelated classes together (every ``payload.get(...)``
#: would reach ``EvalCache.get``). Typed receivers still resolve.
_BUILTIN_COLLISIONS: frozenset[str] = frozenset(
    set(dir(dict)) | set(dir(list)) | set(dir(set)) | set(dir(str))
    | set(dir(tuple)) | set(dir(bytes)) | set(dir(frozenset))
    | set(dir(int)) | set(dir(float))
)

#: Pseudo-types for stdlib concurrency objects (values of the type maps).
T_THREAD_EXECUTOR = "#thread-executor"
T_PROCESS_EXECUTOR = "#process-executor"
T_THREAD = "#thread"
T_PROCESS = "#process"
T_LOCK = "#lock"
T_FILE = "#file"
T_SOCKET = "#socket"

#: Constructor name -> pseudo-type, for stdlib concurrency/resource
#: objects resolved by terminal callable name.
_STDLIB_CTORS: dict[str, str] = {
    "ThreadPoolExecutor": T_THREAD_EXECUTOR,
    "ProcessPoolExecutor": T_PROCESS_EXECUTOR,
    "Pool": T_PROCESS_EXECUTOR,
    "Thread": T_THREAD,
    "Process": T_PROCESS,
    "Lock": T_LOCK,
    "RLock": T_LOCK,
    "Condition": T_LOCK,
    "Semaphore": T_LOCK,
    "BoundedSemaphore": T_LOCK,
    "open": T_FILE,
    "socket": T_SOCKET,
    "create_connection": T_SOCKET,
}

#: ``asyncio`` constructors whose pseudo-types must NOT be treated as
#: thread-level locks or resources (an ``asyncio.Lock`` lives on the
#: loop; an ``asyncio.Semaphore`` is not a fork hazard).
_ASYNC_MODULES = frozenset({"asyncio"})


@dataclass  # repro: noqa[SPEC001] -- mutable fixpoint fact table
class Node:
    """One unit of executable code: a def, an async def, or a lambda."""

    qualname: str
    module: ModuleInfo
    body: list[ast.stmt] | ast.expr
    is_async: bool
    owner: ClassInfo | None = None
    self_name: str | None = None
    params: tuple[str, ...] = ()
    enclosing: "Node | None" = None  # set for lambdas only
    # -- structural facts filled by collection --------------------------
    calls: list["CallEdge"] = field(default_factory=list)
    spawns: list["SpawnEdge"] = field(default_factory=list)
    callable_args: list["CallableArg"] = field(default_factory=list)
    inline_lambdas: list["Node"] = field(default_factory=list)
    in_degree: int = 0
    is_spawn_target: bool = False

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def short(self) -> str:
        """Class-qualified display name (``Memo.get_or_compute``)."""
        if self.owner is not None:
            return f"{self.owner.name}.{self.name}"
        return self.name


@dataclass(frozen=True)
class CallEdge:
    """A plain (same-context) call from one node to another."""

    callee: Node
    line: int


@dataclass(frozen=True)
class SpawnEdge:
    """A call that moves its target into another execution context."""

    target: Node
    context: str
    line: int
    how: str  # e.g. "submitted to a thread executor"


@dataclass(frozen=True)
class CallableArg:
    """A callable bound to a callee parameter (higher-order tracking)."""

    callee: Node
    param: str
    candidates: tuple[Node, ...]
    caller_param: str | None  # set when the arg is a param of the caller
    line: int


@dataclass  # repro: noqa[SPEC001] -- mutable fixpoint fact table
class ContextModel:
    """Everything the CONC rules consume about who runs where."""

    project: Project
    nodes: dict[str, Node] = field(default_factory=dict)
    lambda_nodes: list[Node] = field(default_factory=list)
    ctx: dict[str, set[str]] = field(default_factory=dict)
    why: dict[tuple[str, str], str] = field(default_factory=dict)
    #: (node qual, param name) -> contexts the param escapes into.
    escapes: dict[tuple[str, str], set[str]] = field(default_factory=dict)
    #: entry nodes of fork workers (spawn targets + at-fork callbacks).
    fork_entries: list[Node] = field(default_factory=list)
    #: nodes registered as ``os.register_at_fork(after_in_child=...)``.
    atfork_child: list[Node] = field(default_factory=list)
    #: (module_qual, name) -> pseudo/class type of a module global.
    global_types: dict[tuple[str, str], str] = field(default_factory=dict)
    #: (class qual, attr) -> pseudo/class type of an instance field.
    field_types: dict[tuple[str, str], str] = field(default_factory=dict)
    #: (module_qual, name) -> element type of an annotated container.
    elem_types: dict[tuple[str, str], str] = field(default_factory=dict)
    #: project-decorator qualname -> nodes decorated with it, so the
    #: analyses can resolve wrapper-internal calls of the bound callable
    #: parameter back to the real decorated functions.
    decorator_bindings: dict[str, list[Node]] = field(default_factory=dict)
    passes: int = 0

    def contexts(self, node: Node) -> frozenset[str]:
        return frozenset(self.ctx.get(node.qualname, ()))

    def reason(self, node: Node, context: str) -> str:
        return self.why.get(
            (node.qualname, context), f"runs in {context}",
        )


def _short_why(why: str) -> str:
    if len(why) > 200:
        why = why[:197] + "..."
    return why


class _TypeEnv:
    """Per-function name -> type map (params, locals, module globals)."""

    def __init__(self, model: ContextModel, node: Node) -> None:
        self.model = model
        self.node = node
        self.local: dict[str, str] = {}

    def lookup(self, name: str) -> str | None:
        if name in self.local:
            return self.local[name]
        key = (self.node.module.qualname, name)
        got = self.model.global_types.get(key)
        if got is not None:
            return got
        # Imported symbol that is itself a class.
        imported = self.node.module.imports.get(name)
        if imported is not None and imported[0] == "symbol":
            if imported[1] in self.model.project.classes:
                return imported[1]
        return None


def dotted_chain(node: ast.expr, module: ModuleInfo) -> str | None:
    """Render ``a.b.c`` resolving the head through the import map."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    head = cur.id
    imported = module.imports.get(head)
    if imported is not None:
        kind, qual = imported
        head = qual
    parts.append(head)
    return ".".join(reversed(parts))


def _ctor_type(call: ast.expr, module: ModuleInfo,
               project: Project) -> str | None:
    """Type of a constructor-call expression, or None."""
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    terminal: str | None = None
    if isinstance(func, ast.Name):
        terminal = func.id
        imported = module.imports.get(terminal)
        if imported is not None and imported[0] == "symbol":
            if imported[1] in project.classes:
                return imported[1]
            if imported[1].split(".")[0] in _ASYNC_MODULES:
                return None
        local_qual = f"{module.qualname}.{terminal}"
        if local_qual in project.classes:
            return local_qual
    elif isinstance(func, ast.Attribute):
        terminal = func.attr
        chain = dotted_chain(func, module)
        if chain is not None:
            head = chain.split(".")[0]
            if head in _ASYNC_MODULES:
                return None
            if chain in project.classes:
                return chain
    if terminal in _STDLIB_CTORS:
        return _STDLIB_CTORS[terminal]
    return None


def _annotation_classes(ann: ast.expr, module: ModuleInfo,
                        project: Project) -> list[str]:
    """Project classes named anywhere inside a type annotation."""
    found: list[str] = []
    for sub in ast.walk(ann):
        name: str | None = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            name = sub.value  # forward reference
        if name is None:
            continue
        imported = module.imports.get(name)
        if imported is not None and imported[0] == "symbol" \
                and imported[1] in project.classes:
            found.append(imported[1])
            continue
        local_qual = f"{module.qualname}.{name}"
        if local_qual in project.classes:
            found.append(local_qual)
        else:
            for cls in project.class_by_name.get(name, []):
                found.append(cls.qualname)
                break
    return found


def _collect_types(model: ContextModel) -> None:
    """Pre-pass: module-global and instance-field types."""
    project = model.project
    for info in project.by_qual.values():
        for stmt in info.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            ann: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
                ann = stmt.annotation
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                key = (info.qualname, target.id)
                if value is not None:
                    typ = _ctor_type(value, info, project)
                    if typ is not None:
                        model.global_types[key] = typ
                if ann is not None:
                    # list["Memo"]-style element types for containers.
                    if isinstance(ann, ast.Subscript):
                        elems = _annotation_classes(ann.slice, info, project)
                        if elems:
                            model.elem_types[key] = elems[0]
                    classes = _annotation_classes(ann, info, project)
                    if classes and key not in model.global_types:
                        model.global_types[key] = classes[0]
    for cls in project.classes.values():
        info = project.by_qual.get(cls.module_qual)
        if info is None:
            continue
        for method in cls.methods.values():
            self_name = method.self_name
            if self_name is None:
                continue
            for stmt in ast.walk(method.node):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                        and stmt.value is not None
                    ):
                        typ = _ctor_type(stmt.value, info, project)
                        key = (cls.qualname, target.attr)
                        if typ is not None:
                            model.field_types.setdefault(key, typ)
    # Annotated constructor params often document field types
    # (``cache: EvalCache | None``); fold __init__ annotations in.
    for cls in project.classes.values():
        info = project.by_qual.get(cls.module_qual)
        init = cls.methods.get("__init__")
        if info is None or init is None:
            continue
        args = init.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            classes = _annotation_classes(arg.annotation, info,
                                          model.project)
            if classes:
                model.field_types.setdefault(
                    (cls.qualname, arg.arg), classes[0],
                )


def _make_nodes(model: ContextModel) -> None:
    """Wrap every collected function (and lambda) in a :class:`Node`."""
    project = model.project
    for fn in project.functions.values():
        info = project.by_qual.get(fn.module_qual)
        if info is None:
            continue
        owner = project.classes.get(fn.class_qual) if fn.class_qual else None
        formals = fn.node.args
        params = tuple(
            a.arg for a in [*formals.posonlyargs, *formals.args,
                            *formals.kwonlyargs]
        )
        model.nodes[fn.qualname] = Node(
            qualname=fn.qualname,
            module=info,
            body=fn.node.body,
            is_async=isinstance(fn.node, ast.AsyncFunctionDef),
            owner=owner,
            self_name=fn.self_name,
            params=params,
        )


def iter_own_statements(body: list[ast.stmt]):
    """Walk statements/expressions of a body, skipping nested defs.

    Yields every AST node that belongs to *this* function — nested
    ``def``/``async def``/``class`` bodies are separate nodes and
    lambdas are handled by the caller through :func:`own_lambdas`.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield item
        stack.extend(ast.iter_child_nodes(item))


class _FunctionScanner:
    """Extract call/spawn/callable-arg edges from one node's body."""

    def __init__(self, model: ContextModel, node: Node) -> None:
        self.model = model
        self.node = node
        self.env = _TypeEnv(model, node)
        self.aliases: dict[str, list[Node]] = {}
        self.lambda_counter = 0

    # -- resolution ------------------------------------------------------

    def _function_by_name(self, name: str) -> Node | None:
        module = self.node.module
        local = self.model.nodes.get(f"{module.qualname}.{name}")
        if local is not None:
            return local
        imported = module.imports.get(name)
        if imported is not None and imported[0] == "symbol":
            target = self.model.nodes.get(imported[1])
            if target is not None:
                return target
            cls = self.model.project.classes.get(imported[1])
            if cls is not None:
                init = cls.methods.get("__init__")
                if init is not None:
                    return self.model.nodes.get(init.qualname)
        return None

    def _methods_named(self, attr: str,
                       receiver_type: str | None) -> list[Node]:
        project = self.model.project
        if receiver_type is not None and not receiver_type.startswith("#"):
            cls = project.classes.get(receiver_type)
            if cls is not None:
                method = cls.methods.get(attr)
                if method is not None:
                    found = self.model.nodes.get(method.qualname)
                    return [found] if found is not None else []
                return []
        if attr in _BUILTIN_COLLISIONS:
            return []
        candidates = project.attr_funcs.get(attr, [])
        if not candidates or len(candidates) > _MAX_DUCK_CANDIDATES:
            return []
        out = []
        for fn in candidates:
            found = self.model.nodes.get(fn.qualname)
            if found is not None:
                out.append(found)
        return out

    def _expr_type(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            return self.env.lookup(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            if expr.value.id == self.node.self_name \
                    and self.node.owner is not None:
                return self.model.field_types.get(
                    (self.node.owner.qualname, expr.attr)
                )
            base = self.env.lookup(expr.value.id)
            if base is not None and not base.startswith("#"):
                return self.model.field_types.get((base, expr.attr))
        if isinstance(expr, ast.Call):
            return _ctor_type(expr, self.node.module, self.model.project)
        return None

    def _resolve_callable(
        self, expr: ast.expr,
    ) -> tuple[list[Node], str | None]:
        """Nodes an expression may refer to, plus the caller param name
        when the expression *is* one of this node's parameters."""
        if isinstance(expr, ast.Lambda):
            return [self._lambda_node(expr)], None
        if isinstance(expr, ast.Name):
            if expr.id in self.aliases:
                return list(self.aliases[expr.id]), None
            if expr.id in self.node.params:
                return [], expr.id
            fn = self._function_by_name(expr.id)
            return ([fn] if fn is not None else []), None
        if isinstance(expr, ast.Attribute):
            receiver_type = None
            if isinstance(expr.value, ast.Name):
                if expr.value.id == self.node.self_name \
                        and self.node.owner is not None:
                    receiver_type = self.node.owner.qualname
                else:
                    receiver_type = self.env.lookup(expr.value.id)
            else:
                receiver_type = self._expr_type(expr.value)
            chain = dotted_chain(expr, self.node.module)
            if chain is not None and receiver_type is None:
                direct = self.model.nodes.get(chain)
                if direct is not None:
                    return [direct], None
            return self._methods_named(expr.attr, receiver_type), None
        if isinstance(expr, ast.IfExp):
            left, _ = self._resolve_callable(expr.body)
            right, _ = self._resolve_callable(expr.orelse)
            return left + right, None
        if isinstance(expr, ast.Call) and expr.args:
            # ``functools.partial(fn, ...)`` call sites: the partial
            # object runs ``fn``, so resolve through to it.
            chain = dotted_chain(expr.func, self.node.module)
            if chain is not None and chain.rsplit(".", 1)[-1] == "partial":
                return self._resolve_callable(expr.args[0])
        return [], None

    def _lambda_node(self, expr: ast.Lambda) -> Node:
        for known in self.node.inline_lambdas:
            if known.body is expr.body:
                return known
        self.lambda_counter += 1
        made = Node(
            qualname=(f"{self.node.qualname}"
                      f".<lambda:{expr.lineno}:{self.lambda_counter}>"),
            module=self.node.module,
            body=expr.body,
            is_async=False,
            owner=self.node.owner,
            self_name=self.node.self_name,
            params=tuple(a.arg for a in expr.args.args),
            enclosing=self.node,
        )
        self.node.inline_lambdas.append(made)
        self.model.lambda_nodes.append(made)
        return made

    # -- extraction ------------------------------------------------------

    def scan(self) -> None:
        body = self.node.body
        statements = body if isinstance(body, list) else [ast.Expr(body)]
        self._collect_aliases(statements)
        own = list(iter_own_statements(statements)) \
            if isinstance(body, list) else list(ast.walk(statements[0]))
        lambda_bodies = [
            item for item in own if isinstance(item, ast.Lambda)
        ]
        skip: set[int] = set()
        for lam in lambda_bodies:
            node = self._lambda_node(lam)
            for item in ast.walk(lam.body):
                skip.add(id(item))
            lam_scanner = _FunctionScanner(self.model, node)
            lam_scanner.aliases = self.aliases
            lam_scanner._scan_calls(list(ast.walk(lam.body)), set())
        self._scan_calls(own, skip)

    def _collect_aliases(self, statements: list[ast.stmt]) -> None:
        for item in iter_own_statements(statements):
            if isinstance(item, ast.Assign) and len(item.targets) == 1 \
                    and isinstance(item.targets[0], ast.Name):
                name = item.targets[0].id
                candidates, _ = self._resolve_callable(item.value)
                if candidates:
                    self.aliases[name] = candidates
                typ = self._expr_type(item.value)
                if typ is not None:
                    self.env.local[name] = typ
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                classes = _annotation_classes(
                    item.annotation, self.node.module, self.model.project,
                )
                if classes:
                    self.env.local[item.target.id] = classes[0]
            elif isinstance(item, ast.With):
                for w in item.items:
                    if isinstance(w.optional_vars, ast.Name):
                        typ = self._expr_type(w.context_expr)
                        if typ is not None:
                            self.env.local[w.optional_vars.id] = typ
            elif isinstance(item, ast.For) and isinstance(
                item.target, ast.Name
            ) and isinstance(item.iter, ast.Name):
                key = (self.node.module.qualname, item.iter.id)
                elem = self.model.elem_types.get(key)
                if elem is not None:
                    self.env.local[item.target.id] = elem

    def _spawn_of(self, call: ast.Call) -> list[tuple[ast.expr, str, str]]:
        """(target expr, context, how) triples if ``call`` spawns work."""
        func = call.func
        out: list[tuple[ast.expr, str, str]] = []

        def kwarg(name: str) -> ast.expr | None:
            for kw in call.keywords:
                if kw.arg == name:
                    return kw.value
            return None

        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in ("submit", "map") and call.args:
                receiver = self._expr_type(func.value)
                if receiver == T_PROCESS_EXECUTOR:
                    out.append((call.args[0], FORK,
                                "submitted to a process pool"))
                else:
                    out.append((call.args[0], THREAD,
                                "submitted to a thread executor"))
                return out
            if attr == "run_in_executor" and len(call.args) >= 2:
                out.append((call.args[1], THREAD,
                            "handed to run_in_executor"))
                return out
        chain = dotted_chain(func, self.node.module) or ""
        terminal = chain.rsplit(".", 1)[-1]
        if chain == "asyncio.to_thread" and call.args:
            out.append((call.args[0], THREAD, "handed to asyncio.to_thread"))
        elif terminal == "Thread" and chain.startswith(("threading.", "Thread")):
            target = kwarg("target") or (
                call.args[1] if len(call.args) >= 2 else None
            )
            if target is not None:
                out.append((target, THREAD, "made a threading.Thread target"))
        elif terminal == "Process" and chain.startswith(
            ("multiprocessing.", "Process")
        ):
            target = kwarg("target") or (
                call.args[1] if len(call.args) >= 2 else None
            )
            if target is not None:
                out.append((target, FORK,
                            "made a multiprocessing.Process target"))
        elif chain == "os.register_at_fork":
            child = kwarg("after_in_child")
            if child is not None:
                out.append((child, FORK,
                            "registered as an after-fork child callback"))
        return out

    def _scan_calls(self, own: list[ast.AST], skip: set[int]) -> None:
        for item in own:
            if id(item) in skip or not isinstance(item, ast.Call):
                continue
            spawned_args: set[int] = set()
            for target_expr, context, how in self._spawn_of(item):
                spawned_args.add(id(target_expr))
                candidates, caller_param = self._resolve_callable(
                    target_expr
                )
                for target in candidates:
                    target.is_spawn_target = True
                    self.node.spawns.append(SpawnEdge(
                        target=target, context=context,
                        line=item.lineno, how=how,
                    ))
                    if context == FORK:
                        if how.startswith("registered"):
                            self.model.atfork_child.append(target)
                        self.model.fork_entries.append(target)
                if caller_param is not None:
                    self.model.escapes.setdefault(
                        (self.node.qualname, caller_param), set(),
                    ).add(context)
            callees, _ = self._resolve_callable(item.func)
            for callee in callees:
                callee.in_degree += 1
                self.node.calls.append(CallEdge(
                    callee=callee, line=item.lineno,
                ))
            # Callable arguments bound to callee params (higher order).
            for callee in callees:
                params = self._bindable_params(callee)
                for i, arg in enumerate(item.args):
                    if id(arg) in spawned_args or i >= len(params):
                        continue
                    self._note_callable_arg(callee, params[i], arg, item)
                for kw in item.keywords:
                    if kw.arg is None or id(kw.value) in spawned_args:
                        continue
                    if kw.arg in params:
                        self._note_callable_arg(
                            callee, kw.arg, kw.value, item,
                        )

    @staticmethod
    def _bindable_params(callee: Node) -> tuple[str, ...]:
        params = callee.params
        if callee.self_name is not None and params:
            return params[1:]
        return params

    def _note_callable_arg(self, callee: Node, param: str,
                           arg: ast.expr, call: ast.Call) -> None:
        if not isinstance(arg, (ast.Lambda, ast.Name, ast.Attribute,
                                ast.Call)):
            return
        candidates, caller_param = self._resolve_callable(arg)
        funcish = [
            c for c in candidates
            if c.enclosing is not None or c.qualname in self.model.nodes
        ]
        if not funcish and caller_param is None:
            return
        self.node.callable_args.append(CallableArg(
            callee=callee, param=param,
            candidates=tuple(funcish),
            caller_param=caller_param, line=call.lineno,
        ))


def _bind_decorators(model: ContextModel) -> None:
    """Resolve project decorators (``functools.wraps``-style wrappers).

    ``@memoized def solve(...)`` binds ``solve`` to the decorator's
    first parameter; the wrapper closure then calls that parameter.
    Without this pass the wrapped function escapes every whole-program
    walk: the wrapper's ``fn(*args)`` resolves to nothing. Here every
    decorated function is (a) recorded in ``decorator_bindings`` for
    the keysound pass, (b) registered as a callable bound to the
    decorator's first parameter (so escape facts propagate), and (c)
    wired with real call edges from each wrapper-scope call of the
    parameter, so context and effect propagation reach it.
    """
    project = model.project
    for fn in project.functions.values():
        node = model.nodes.get(fn.qualname)
        if node is None:
            continue
        for dec in fn.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            dec_qual: str | None = None
            if isinstance(target, ast.Name):
                imported = node.module.imports.get(target.id)
                if imported is not None and imported[0] == "symbol":
                    dec_qual = imported[1]
                else:
                    dec_qual = f"{node.module.qualname}.{target.id}"
            elif isinstance(target, ast.Attribute):
                dec_qual = dotted_chain(target, node.module)
            if dec_qual is None:
                continue
            dec_node = model.nodes.get(dec_qual)
            if dec_node is None or not dec_node.params:
                continue
            model.decorator_bindings.setdefault(
                dec_node.qualname, [],
            ).append(node)
            dec_node.callable_args.append(CallableArg(
                callee=dec_node, param=dec_node.params[0],
                candidates=(node,), caller_param=None,
                line=fn.node.lineno,
            ))
    # Wrapper-scope calls of the bound parameter become real edges to
    # every decorated function.
    all_nodes = list(model.nodes.values()) + list(model.lambda_nodes)
    for dec_qual, bound in model.decorator_bindings.items():
        dec_node = model.nodes.get(dec_qual)
        if dec_node is None:
            continue
        param = dec_node.params[0]
        prefix = dec_qual + "."
        scoped = [dec_node] + [
            n for n in all_nodes if n.qualname.startswith(prefix)
        ]
        for wrapper in scoped:
            body = wrapper.body
            statements = body if isinstance(body, list) \
                else [ast.Expr(body)]
            for item in iter_own_statements(statements):
                if isinstance(item, ast.Call) and isinstance(
                    item.func, ast.Name
                ) and item.func.id == param:
                    for target in bound:
                        target.in_degree += 1
                        wrapper.calls.append(CallEdge(
                            callee=target, line=item.lineno,
                        ))


def _scan_module_atfork(model: ContextModel) -> None:
    """Module-level ``os.register_at_fork`` registrations.

    Reinit callbacks are conventionally registered at import time
    (often inside a ``hasattr`` guard); the function scanner only sees
    calls inside function bodies, so collect these from module bodies.
    """
    for info in model.project.by_qual.values():
        for item in info.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for sub in ast.walk(item):
                if not isinstance(sub, ast.Call):
                    continue
                if dotted_chain(sub.func, info) != "os.register_at_fork":
                    continue
                for kw in sub.keywords:
                    if kw.arg != "after_in_child" or \
                            not isinstance(kw.value, ast.Name):
                        continue
                    target = model.nodes.get(
                        f"{info.qualname}.{kw.value.id}"
                    )
                    if target is None:
                        continue
                    target.is_spawn_target = True
                    model.atfork_child.append(target)
                    model.fork_entries.append(target)
                    _add_ctx(
                        model, target, FORK,
                        "registered as an after-fork child callback "
                        f"at import time in {info.qualname}",
                    )


def _seed(model: ContextModel) -> None:
    """Initial contexts before propagation."""
    # Module-level calls run at import time: their callees are main.
    for info in model.project.by_qual.values():
        for item in info.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for sub in ast.walk(item):
                if not isinstance(sub, ast.Call):
                    continue
                name = None
                if isinstance(sub.func, ast.Name):
                    name = sub.func.id
                local = model.nodes.get(f"{info.qualname}.{name}") \
                    if name else None
                if local is not None:
                    local.in_degree += 1
                    _add_ctx(model, local, MAIN,
                             f"called at import time in {info.qualname}")
    for node in model.nodes.values():
        if node.is_async:
            _add_ctx(model, node, LOOP,
                     "async def: its body runs on the event loop")
        elif node.in_degree == 0 and not node.is_spawn_target:
            _add_ctx(model, node, MAIN,
                     "assumed program entry (no in-project caller)")


def _add_ctx(model: ContextModel, node: Node, context: str,
             why: str) -> bool:
    bucket = model.ctx.setdefault(node.qualname, set())
    if context in bucket:
        return False
    bucket.add(context)
    model.why.setdefault((node.qualname, context), _short_why(why))
    return True


def solve_contexts(model: ContextModel) -> None:
    """Propagate contexts along call/spawn/escape edges to a fixpoint."""
    all_nodes = list(model.nodes.values()) + list(model.lambda_nodes)
    for sweep in range(MAX_PASSES):
        changed = False
        for node in all_nodes:
            # Lambdas run where their enclosing function runs, unless
            # they only exist to be spawned elsewhere.
            if node.enclosing is not None and not node.is_spawn_target:
                for context in model.contexts(node.enclosing):
                    changed |= _add_ctx(
                        model, node, context,
                        f"closure evaluated inline by {node.enclosing.short}"
                        f" ({model.reason(node.enclosing, context)})",
                    )
            contexts = model.contexts(node)
            # Escape facts are structural: propagate them regardless of
            # whether anything runs this node yet.
            for carg in node.callable_args:
                escaped = model.escapes.get(
                    (carg.callee.qualname, carg.param), set(),
                )
                for context in escaped:
                    why = (
                        f"bound to parameter '{carg.param}' of "
                        f"{carg.callee.short} at "
                        f"{node.module.path}:{carg.line}, which "
                        f"{model.why.get((carg.callee.qualname + ':escape', carg.param), 'hands it to an executor')}"
                    )
                    for cand in carg.candidates:
                        cand.is_spawn_target = True
                        changed |= _add_ctx(model, cand, context, why)
                    if carg.caller_param is not None:
                        bucket = model.escapes.setdefault(
                            (node.qualname, carg.caller_param), set(),
                        )
                        if context not in bucket:
                            bucket.add(context)
                            changed = True
            if not contexts:
                continue
            for spawn in node.spawns:
                changed |= _add_ctx(
                    model, spawn.target, spawn.context,
                    f"{spawn.how} at {node.module.path}:{spawn.line} "
                    f"by {node.short}",
                )
            for edge in node.calls:
                if edge.callee.is_async:
                    continue  # seeded with event-loop already
                for context in contexts:
                    changed |= _add_ctx(
                        model, edge.callee, context,
                        f"called from {node.short} "
                        f"({model.reason(node, context)})",
                    )
        model.passes = sweep + 1
        if not changed:
            break


def build_contexts(project: Project) -> ContextModel:
    """Collect nodes/edges and solve execution contexts for a project."""
    model = ContextModel(project=project)
    _collect_types(model)
    _make_nodes(model)
    for node in list(model.nodes.values()):
        _FunctionScanner(model, node).scan()
    # Escaping spawn params get a readable description for why-chains.
    for (qual, param), contexts in model.escapes.items():
        for context in contexts:
            model.why.setdefault(
                (qual + ":escape", param),
                f"hands '{param}' to a {context} spawn",
            )
    _bind_decorators(model)
    _scan_module_atfork(model)
    _seed(model)
    solve_contexts(model)
    # fork entries may have been discovered before their Node existed
    seen: set[int] = set()
    unique_entries = []
    for entry in model.fork_entries:
        if id(entry) not in seen:
            seen.add(id(entry))
            unique_entries.append(entry)
    model.fork_entries = unique_entries
    return model
