"""Whole-program concurrency-safety analysis (``CONC001``–``CONC004``).

Public entry point: :func:`analyze_concurrency` builds the project call
graph from the lint context (the same :func:`~repro.analysis.dimensional
.callgraph.build_project` pre-pass the dimensional rules use), solves
each function's *execution contexts* (main, event-loop, executor-thread,
fork-worker) to a fixpoint, collects the shared mutable state and lock
structure, and reports:

* **CONC001** — unsynchronized mutation of state reachable from two or
  more thread contexts;
* **CONC002** — blocking calls transitively reachable inside ``async
  def`` without an executor hop;
* **CONC003** — fork-unsafe inherited state (locks, files, sockets,
  executors) reachable from fork-worker entry points;
* **CONC004** — mutable objects captured into spawned task closures and
  mutated on both sides of the submission;
* **CONCNOTE** — malformed or unverifiable ``# repro:
  guarded-by[lockname]`` annotations.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.concurrency.contexts import (
    FORK,
    LOOP,
    MAIN,
    THREAD,
    ContextModel,
    build_contexts,
)
from repro.analysis.concurrency.rules import run_rules
from repro.analysis.concurrency.state import (
    StateModel,
    build_state,
    parse_guard_comments,
)
from repro.analysis.context import ModuleSource
from repro.analysis.dimensional.callgraph import build_project
from repro.analysis.finding import Finding

__all__ = [
    "FORK",
    "LOOP",
    "MAIN",
    "THREAD",
    "ContextModel",
    "StateModel",
    "analyze_concurrency",
    "build_concurrency_model",
    "build_contexts",
    "build_state",
    "parse_guard_comments",
]


def build_concurrency_model(
    context: Iterable[ModuleSource],
) -> tuple[ContextModel, StateModel]:
    """Solve contexts and state facts for a set of parsed modules.

    Exposed for the meta-suite, which asserts on the inferred contexts
    directly in addition to the emitted findings.
    """
    sources = list(context)
    project = build_project(sources)
    model = build_contexts(project)
    state = build_state(
        model, {source.path: source.source for source in sources},
    )
    return model, state


def analyze_concurrency(
    targets: Iterable[ModuleSource],
    context: Iterable[ModuleSource],
    disable: frozenset[str] = frozenset(),
    model: ContextModel | None = None,
    state: StateModel | None = None,
) -> dict[str, list[Finding]]:
    """Run the concurrency pass and report findings for ``targets``.

    ``context`` is every parsed module the call graph may cross into
    (typically the whole installed package plus the explicit targets);
    ``targets`` is the subset whose findings the caller wants. Pass a
    prebuilt ``model``/``state`` pair (the registry's shared solve) to
    skip the per-pass construction. Returns a mapping of target path ->
    sorted findings.
    """
    target_list = list(targets)
    if model is None or state is None:
        model, state = build_concurrency_model(context)
    findings = run_rules(model, state, disable)
    results: dict[str, list[Finding]] = {
        source.path: [] for source in target_list
    }
    for finding in findings:
        if finding.path in results:
            results[finding.path].append(finding)
    return {path: sorted(found) for path, found in results.items()}
