"""The CONC rule implementations.

Each rule combines the execution contexts from :mod:`.contexts` with the
shared-state facts from :mod:`.state` and emits findings whose messages
carry the full inference chain — which contexts, via which spawn or call
edges, touch which state — in the same spirit as the DIM001–DIM004
messages.
"""

from __future__ import annotations

import ast

from repro.analysis.concurrency.contexts import (
    FORK,
    LOOP,
    MAIN,
    THREAD,
    ContextModel,
    Node,
    iter_own_statements,
)
from repro.analysis.concurrency.state import (
    BLOCKING_PROJECT,
    GIL_GUARD,
    MUTATING_METHODS,
    Access,
    StateKey,
    StateModel,
)
from repro.analysis.finding import Finding

#: Longest chain fragment embedded in a message (same cap as DIM chains).
_CHAIN_LIMIT = 200

#: BFS depth cap for the reachability rules.
_MAX_DEPTH = 16

#: Display order for contexts: most concurrent first.
_CTX_ORDER = (THREAD, LOOP, FORK, MAIN)


def _trim(text: str) -> str:
    if len(text) > _CHAIN_LIMIT:
        return text[:_CHAIN_LIMIT - 3] + "..."
    return text


def _ctx_list(contexts: frozenset[str] | set[str]) -> str:
    ordered = [c for c in _CTX_ORDER if c in contexts]
    return "{" + ", ".join(ordered) + "}"


def _render_key(key: StateKey) -> str:
    _kind, scope, name = key
    return f"{scope}.{name}"


def _pick_context(model: ContextModel, node: Node) -> str | None:
    for context in _CTX_ORDER:
        if context in model.contexts(node):
            return context
    return None


def check_conc001(model: ContextModel, state: StateModel,
                  disable: frozenset[str]) -> list[Finding]:
    """Unsynchronized mutation of state shared across thread contexts."""
    if "CONC001" in disable:
        return []
    by_key: dict[StateKey, list[Access]] = {}
    for access in state.accesses:
        by_key.setdefault(access.key, []).append(access)
    findings: list[Finding] = []
    for key, accesses in sorted(by_key.items()):
        if key[0] == "field" and key[1] not in state.shared_classes:
            continue
        live = [a for a in accesses if not a.in_init]
        writes = [a for a in live if a.write]
        if not any(not a.atomic for a in writes):
            continue
        contexts: set[str] = set()
        example: dict[str, Access] = {}
        for access in live:
            for context in model.contexts(access.node):
                if context == FORK:
                    continue  # separate address space: no data race
                contexts.add(context)
                example.setdefault(context, access)
        if THREAD not in contexts and not ({MAIN, LOOP} <= contexts):
            continue  # never reachable from two OS threads at once
        declared = state.guard_decls.get(key)
        reported = False
        for access in writes:
            if access.atomic:
                continue
            if declared is not None:
                if declared == GIL_GUARD or access.guard is None \
                        or access.guard == declared:
                    # ``guard is None`` is trusted: guarding may happen
                    # at the call site (the annotation says which lock).
                    continue
                message = (
                    f"shared state '{_render_key(key)}' is declared "
                    f"guarded-by[{declared}] but this {access.op} at "
                    f"line {access.line} runs under lock "
                    f"'{access.guard}' instead"
                )
                findings.append(Finding(
                    path=access.node.module.path, line=access.line,
                    col=0, rule="CONC001", message=message,
                ))
                continue
            if access.guard is not None:
                continue  # lexically under a lock
            if reported:
                continue  # one finding per state key
            reported = True
            context = _pick_context(model, access.node) or MAIN
            chain = model.reason(access.node, context)
            other = None
            for other_ctx in _CTX_ORDER:
                if other_ctx in contexts and other_ctx != context:
                    other = (other_ctx, example[other_ctx])
                    break
            shared_note = ""
            if key[0] == "field":
                why_shared = state.shared_why.get(key[1])
                if why_shared:
                    shared_note = f"; instance is shared: {why_shared}"
            other_note = ""
            if other is not None:
                other_ctx, other_access = other
                other_note = (
                    f" while {other_access.node.short} also "
                    f"{'writes' if other_access.write else 'reads'} it "
                    f"in {other_ctx} "
                    f"({_trim(model.reason(other_access.node, other_ctx))})"
                )
            message = (
                f"unsynchronized {access.op} of shared state "
                f"'{_render_key(key)}' reachable from contexts "
                f"{_ctx_list(contexts)}: {access.node.short} runs in "
                f"{context} ({_trim(chain)}){other_note}{shared_note}; "
                f"guard it with a lock or annotate the definition with "
                f"'# repro: guarded-by[lockname]'"
            )
            findings.append(Finding(
                path=access.node.module.path, line=access.line, col=0,
                rule="CONC001", message=message,
            ))
    return findings


def check_conc002(model: ContextModel, state: StateModel,
                  disable: frozenset[str]) -> list[Finding]:
    """Blocking calls reachable inside async defs without executor hops."""
    if "CONC002" in disable:
        return []
    # site (path, line, what) -> (chain text, roots that reach it)
    sites: dict[tuple[str, int, str], tuple[str, list[str]]] = {}
    for root in model.nodes.values():
        if not root.is_async:
            continue
        queue: list[tuple[Node, tuple[str, ...]]] = [(root, (root.short,))]
        visited: set[str] = set()
        while queue:
            node, path = queue.pop(0)
            if node.qualname in visited or len(path) > _MAX_DEPTH:
                continue
            visited.add(node.qualname)
            for blocking in state.blocking.get(node.qualname, []):
                key = (node.module.path, blocking.line, blocking.what)
                chain = " -> ".join(path)
                entry = sites.get(key)
                if entry is None:
                    sites[key] = (chain, [root.short])
                elif root.short not in entry[1]:
                    entry[1].append(root.short)
            for edge in node.calls:
                callee = edge.callee
                if callee.is_async or callee.qualname in visited:
                    continue
                if callee.qualname in BLOCKING_PROJECT:
                    what = BLOCKING_PROJECT[callee.qualname]
                    key = (node.module.path, edge.line, what)
                    chain = " -> ".join(path + (callee.short,))
                    entry = sites.get(key)
                    if entry is None:
                        sites[key] = (chain, [root.short])
                    elif root.short not in entry[1]:
                        entry[1].append(root.short)
                    continue
                queue.append((callee, path + (callee.short,)))
            for lam in node.inline_lambdas:
                if not lam.is_spawn_target:
                    queue.append((lam, path + ("<lambda>",)))
    findings: list[Finding] = []
    for (path, line, what), (chain, roots) in sorted(sites.items()):
        extra = f" (+{len(roots) - 1} more async entry points)" \
            if len(roots) > 1 else ""
        message = (
            f"blocking {what} executes on the event loop: reachable "
            f"from async {roots[0]}{extra} via {_trim(chain)} with no "
            f"executor hop; wrap it in loop.run_in_executor / "
            f"asyncio.to_thread or use an async equivalent"
        )
        findings.append(Finding(
            path=path, line=line, col=0, rule="CONC002", message=message,
        ))
    return findings


def check_conc003(model: ContextModel, state: StateModel,
                  disable: frozenset[str]) -> list[Finding]:
    """Fork-unsafe inherited state reachable from fork-worker entries."""
    if "CONC003" in disable:
        return []
    atfork = {id(node) for node in model.atfork_child}
    accesses_by_node: dict[str, list[Access]] = {}
    for access in state.accesses:
        accesses_by_node.setdefault(
            access.node.qualname, [],
        ).append(access)
    findings: list[Finding] = []
    seen_sites: set[tuple[str, int, str]] = set()
    for entry in model.fork_entries:
        if id(entry) in atfork:
            continue  # reinit callbacks touch resources on purpose
        queue: list[tuple[Node, tuple[str, ...]]] = [
            (entry, (entry.short,)),
        ]
        visited: set[str] = set()
        while queue:
            node, path = queue.pop(0)
            if node.qualname in visited or len(path) > _MAX_DEPTH:
                continue
            visited.add(node.qualname)
            for access in accesses_by_node.get(node.qualname, []):
                resource = state.resources.get(access.key)
                if resource is None:
                    continue
                if access.key in state.reinit_keys:
                    continue  # rebuilt in an after-fork child callback
                if access.key[2] in state.reinit_attrs:
                    continue
                site = (node.module.path, access.line,
                        _render_key(access.key))
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                chain = " -> ".join(path)
                message = (
                    f"fork worker entry {entry.short} reaches "
                    f"{resource} '{_render_key(access.key)}' via "
                    f"{_trim(chain)}: locks, handles, and executors "
                    f"inherited over fork() can be left locked or "
                    f"duplicated in the child; reinitialize it in "
                    f"os.register_at_fork(after_in_child=...) or keep "
                    f"it out of worker code"
                )
                findings.append(Finding(
                    path=node.module.path, line=access.line, col=0,
                    rule="CONC003", message=message,
                ))
            for edge in node.calls:
                if edge.callee.qualname not in visited:
                    queue.append((edge.callee,
                                  path + (edge.callee.short,)))
            for lam in node.inline_lambdas:
                queue.append((lam, path + ("<lambda>",)))
    return findings


def _local_mutations(items: list[ast.AST]) -> dict[str, int]:
    """Local names mutated in place (name -> first line)."""
    mutated: dict[str, int] = {}

    def note(name: str, line: int) -> None:
        mutated.setdefault(name, line)

    for item in items:
        if isinstance(item, ast.AugAssign) and isinstance(
            item.target, ast.Name
        ):
            note(item.target.id, item.lineno)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    note(target.value.id, item.lineno)
        elif isinstance(item, ast.Call) and isinstance(
            item.func, ast.Attribute
        ) and item.func.attr in MUTATING_METHODS and isinstance(
            item.func.value, ast.Name
        ):
            note(item.func.value.id, item.lineno)
    return mutated


def check_conc004(model: ContextModel, state: StateModel,
                  disable: frozenset[str]) -> list[Finding]:
    """Mutable objects captured into spawned closures and mutated on
    both sides of the submission."""
    if "CONC004" in disable:
        return []
    findings: list[Finding] = []
    for node in model.nodes.values():
        body = node.body
        if not isinstance(body, list):
            continue
        own = list(iter_own_statements(body))
        # Mutations in the enclosing function, outside any lambda body.
        lambda_items: set[int] = set()
        for lam in node.inline_lambdas:
            lam_body = lam.body
            if isinstance(lam_body, ast.expr):
                for item in ast.walk(lam_body):
                    lambda_items.add(id(item))
        outside = [i for i in own if id(i) not in lambda_items]
        outside_mut = _local_mutations(outside)
        if not outside_mut:
            continue
        for spawn in node.spawns:
            target = spawn.target
            if target.enclosing is not node:
                continue  # only closures capture this node's locals
            lam_body = target.body
            if not isinstance(lam_body, ast.expr):
                continue
            inside = list(ast.walk(lam_body))
            inside_mut = _local_mutations(inside)
            captured_reads = {
                item.id
                for item in inside
                if isinstance(item, ast.Name)
                and isinstance(item.ctx, ast.Load)
            }
            for name in sorted(set(inside_mut) & set(outside_mut)):
                if name in target.params or name not in captured_reads:
                    continue
                message = (
                    f"'{name}' is captured into a closure {spawn.how} "
                    f"at line {spawn.line} and mutated both inside the "
                    f"task (line {inside_mut[name]}) and in "
                    f"{node.short} (line {outside_mut[name]}): the two "
                    f"sides run in different contexts "
                    f"({_ctx_list(model.contexts(node))} vs "
                    f"{spawn.context}); pass a copy into the task or "
                    f"collect results instead of sharing the object"
                )
                findings.append(Finding(
                    path=node.module.path, line=spawn.line, col=0,
                    rule="CONC004", message=message,
                ))
    return findings


def check_concnote(model: ContextModel, state: StateModel,
                   disable: frozenset[str]) -> list[Finding]:
    """Malformed or unverifiable guarded-by annotations."""
    if "CONCNOTE" in disable:
        return []
    return [
        Finding(
            path=issue.path, line=issue.line, col=0,
            rule="CONCNOTE", message=issue.message,
        )
        for issue in state.guard_issues
    ]


def run_rules(model: ContextModel, state: StateModel,
              disable: frozenset[str]) -> list[Finding]:
    """Run every CONC rule and return the merged finding list."""
    findings: list[Finding] = []
    findings.extend(check_conc001(model, state, disable))
    findings.extend(check_conc002(model, state, disable))
    findings.extend(check_conc003(model, state, disable))
    findings.extend(check_conc004(model, state, disable))
    findings.extend(check_concnote(model, state, disable))
    return findings
