"""Shared-state and lock modeling for the concurrency analysis.

This module answers, for every :class:`~.contexts.Node`, four questions
the CONC rules combine with the execution contexts:

* which *shared state keys* (module globals and instance fields of
  escaping classes) the node reads and writes, and whether each write is
  a GIL-atomic rebind or a compound operation (``+=``, subscript store,
  mutating container method);
* which writes are *lock guarded* — lexically under ``with lock:`` or
  between ``lock.acquire()`` / ``lock.release()`` statements — and which
  state is covered by a trusted ``# repro: guarded-by[lockname]``
  annotation (same comment grammar as the PR 5 ``dim[...]`` pins);
* which state keys hold *fork-unsafe resources* (locks, open files,
  sockets, executors) and which of those are reinitialized in an
  ``os.register_at_fork(after_in_child=...)`` callback;
* which blocking primitives (``time.sleep``, sync file I/O,
  ``subprocess``, ``Lock.acquire``, the scalar evaluation pipeline) the
  node calls directly, for the CONC002 reachability walk.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

from repro.analysis.concurrency.contexts import (
    ContextModel,
    Node,
    T_FILE,
    T_LOCK,
    T_PROCESS_EXECUTOR,
    T_SOCKET,
    T_THREAD_EXECUTOR,
    dotted_chain,
)

#: A shared-state key: ("global", module_qual, name) or
#: ("field", class_qual, attr).
StateKey = tuple[str, str, str]

#: Special guard name meaning "single bytecode op, the GIL suffices".
GIL_GUARD = "gil"

_GUARDED_BY_RE = re.compile(
    r"#\s*repro:\s*guarded-by\[(?P<body>[^\]]*)\]"
)
_GUARDED_BY_LOOSE_RE = re.compile(r"#\s*repro:\s*guarded-by\b")

#: Container/obj methods that mutate their receiver in place.
MUTATING_METHODS: frozenset[str] = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end", "sort",
    "reverse", "appendleft", "popleft",
})

#: Dotted stdlib chains that block the calling thread.
BLOCKING_CHAINS: dict[str, str] = {
    "time.sleep": "time.sleep",
    "os.system": "os.system",
    "os.wait": "os.wait",
    "os.waitpid": "os.waitpid",
    "subprocess.run": "subprocess.run",
    "subprocess.call": "subprocess.call",
    "subprocess.check_call": "subprocess.check_call",
    "subprocess.check_output": "subprocess.check_output",
    "subprocess.Popen": "subprocess.Popen",
    "socket.create_connection": "socket.create_connection",
    "select.select": "select.select",
    "urllib.request.urlopen": "urllib.request.urlopen",
    "requests.get": "requests.get",
    "requests.post": "requests.post",
}

#: Attribute-call names that block unless awaited (sync lock
#: acquisition, sync file/socket I/O). An ``await x.acquire()`` is an
#: asyncio primitive and is exempt at the collection site.
BLOCKING_ATTRS: dict[str, str] = {
    "acquire": "sync lock acquisition",
    "read_text": "sync file read",
    "read_bytes": "sync file read",
    "write_text": "sync file write",
    "write_bytes": "sync file write",
    "recv": "sync socket read",
    "sendall": "sync socket write",
    "accept": "sync socket accept",
}

#: Project functions that are themselves blocking primitives: the
#: scalar evaluation pipeline (CPU-bound for milliseconds per config)
#: and the cache's disk I/O. Reaching one of these from a coroutine
#: without an executor hop stalls the event loop.
BLOCKING_PROJECT: dict[str, str] = {
    "repro.engine.record.evaluate_config": "scalar config evaluation",
    "repro.engine.evaluate_many": "batch evaluation",
    "repro.engine.sweep.run_sweep": "sweep evaluation",
    "repro.chip.processor.Processor.report": "scalar report evaluation",
}

_RESOURCE_TYPES: dict[str, str] = {
    T_LOCK: "a threading lock",
    T_FILE: "an open file handle",
    T_SOCKET: "a live socket",
    T_THREAD_EXECUTOR: "a running thread executor",
    T_PROCESS_EXECUTOR: "a running process pool",
}


@dataclass(frozen=True)
class Access:
    """One read or write of a shared state key inside one node."""

    key: StateKey
    node: Node
    line: int
    write: bool
    atomic: bool  # plain rebind — a single STORE op under the GIL
    guard: str | None  # lock terminal name the site is under, if any
    op: str  # human description of the operation
    in_init: bool  # inside the owning class's __init__/__post_init__


@dataclass(frozen=True)
class BlockingCall:
    """One direct call to a blocking primitive inside one node."""

    node: Node
    line: int
    what: str  # "time.sleep", "sync lock acquisition", ...
    under_lock: bool  # ``with lock: ...`` bodies are not re-flagged


@dataclass(frozen=True)
class GuardIssue:
    """A malformed or unverifiable guarded-by annotation (CONCNOTE)."""

    path: str
    line: int
    message: str


@dataclass  # repro: noqa[SPEC001] -- mutable fixpoint fact table
class StateModel:
    """Shared-state facts keyed alongside the context model."""

    accesses: list[Access] = field(default_factory=list)
    blocking: dict[str, list[BlockingCall]] = field(default_factory=dict)
    #: classes whose instances are reachable from module level.
    shared_classes: set[str] = field(default_factory=set)
    #: why each class is considered shared (for finding chains).
    shared_why: dict[str, str] = field(default_factory=dict)
    #: state key -> declared guard lock name (trusted annotation).
    guard_decls: dict[StateKey, str] = field(default_factory=dict)
    #: state key -> resource description, for CONC003.
    resources: dict[StateKey, str] = field(default_factory=dict)
    #: state keys rewritten inside an after-fork child callback.
    reinit_keys: set[StateKey] = field(default_factory=set)
    #: attr names rewritten in an after-fork callback on *any* class —
    #: fallback for untyped loops over registries.
    reinit_attrs: set[str] = field(default_factory=set)
    #: lock terminal names known per (scope kind, scope qual).
    known_locks: dict[tuple[str, str], set[str]] = field(
        default_factory=dict
    )
    guard_issues: list[GuardIssue] = field(default_factory=list)


def parse_guard_comments(
    source: str,
) -> tuple[dict[int, str], list[tuple[int, str]]]:
    """``# repro: guarded-by[lock]`` comments by line, plus errors."""
    by_line: dict[int, str] = {}
    errors: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return by_line, errors
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _GUARDED_BY_RE.search(tok.string)
        if match is None:
            if _GUARDED_BY_LOOSE_RE.search(tok.string):
                errors.append((
                    tok.start[0],
                    "malformed guarded-by comment: expected "
                    "'# repro: guarded-by[lockname]'",
                ))
            continue
        body = match.group("body").strip()
        if not body or not body.replace("_", "a").isidentifier():
            errors.append((
                tok.start[0],
                f"guarded-by lock name {body!r} is not an identifier",
            ))
            continue
        by_line[tok.start[0]] = body
    return by_line, errors


def _terminal_name(expr: ast.expr) -> str | None:
    """Terminal identifier of a lock expression (``self._lock`` -> _lock)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Call):
        return _terminal_name(expr.func)
    return None


class _StateScanner:
    """Collect accesses, guards, and blocking calls from one node."""

    def __init__(self, model: ContextModel, state: StateModel,
                 node: Node) -> None:
        self.model = model
        self.state = state
        self.node = node
        self.module = node.module
        self.in_init = node.owner is not None and node.name in (
            "__init__", "__post_init__",
        )
        self.module_globals = self._module_global_names()
        self.declared_globals: set[str] = set()
        self.locals_seen: set[str] = set(node.params)

    def _module_global_names(self) -> set[str]:
        names: set[str] = set()
        for stmt in self.module.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                names.add(stmt.target.id)
        return names

    # -- key resolution --------------------------------------------------

    def _key_of(self, expr: ast.expr) -> StateKey | None:
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.locals_seen and name not in \
                    self.declared_globals:
                return None
            if name in self.module_globals:
                return ("global", self.module.qualname, name)
            return None
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            if (
                expr.value.id == self.node.self_name
                and self.node.owner is not None
            ):
                return ("field", self.node.owner.qualname, expr.attr)
            # Module attribute access: ``metrics._COUNTERS``.
            imported = self.module.imports.get(expr.value.id)
            if imported is not None and imported[0] == "module":
                target = self.model.project.by_qual.get(imported[1])
                if target is not None:
                    return ("global", target.qualname, expr.attr)
            # Typed receiver: ``memo.hits`` where memo: Memo.
            base = self._receiver_type(expr.value)
            if base is not None and not base.startswith("#"):
                return ("field", base, expr.attr)
        return None

    def _receiver_type(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            typ = self._local_types.get(expr.id)
            if typ is not None:
                return typ
            got = self.model.global_types.get(
                (self.module.qualname, expr.id)
            )
            return got
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            if expr.value.id == self.node.self_name \
                    and self.node.owner is not None:
                return self.model.field_types.get(
                    (self.node.owner.qualname, expr.attr)
                )
        return None

    # -- scanning --------------------------------------------------------

    def scan(self) -> None:
        self._local_types: dict[str, str] = {}
        body = self.node.body
        statements = body if isinstance(body, list) \
            else [ast.Expr(body)]  # lambda: a single expression
        self._scan_block(statements, guards=[], acquired=set())

    def _scan_block(self, statements: list[ast.stmt],
                    guards: list[str], acquired: set[str]) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Global):
                self.declared_globals.update(stmt.names)
                continue
            if isinstance(stmt, ast.With) or isinstance(
                stmt, ast.AsyncWith
            ):
                names = []
                for item in stmt.items:
                    self._scan_expr(item.context_expr, guards, acquired)
                    name = _terminal_name(item.context_expr)
                    if name is not None and self._looks_like_lock(
                        item.context_expr, name,
                    ):
                        names.append(name)
                self._scan_block(
                    stmt.body, guards + names, acquired,
                )
                continue
            # lock.acquire() / lock.release() statement pairs.
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Call
            ) and isinstance(stmt.value.func, ast.Attribute):
                attr = stmt.value.func.attr
                name = _terminal_name(stmt.value.func.value)
                if attr == "acquire" and name is not None and \
                        self._looks_like_lock(stmt.value.func.value, name):
                    self._scan_expr(stmt.value, guards, acquired)
                    acquired.add(name)
                    continue
                if attr == "release" and name is not None:
                    acquired.discard(name)
                    self._scan_expr(stmt.value, guards, acquired)
                    continue
            self._scan_stmt(stmt, guards, acquired)

    def _looks_like_lock(self, expr: ast.expr, name: str) -> bool:
        typ = self._receiver_type(expr) if not isinstance(expr, ast.Call) \
            else None
        if typ == T_LOCK:
            return True
        if isinstance(expr, ast.Attribute) and self.node.owner is not None:
            if self.model.field_types.get(
                (self.node.owner.qualname, expr.attr)
            ) == T_LOCK:
                return True
        lower = name.lower()
        return "lock" in lower or "mutex" in lower or lower == "cond"

    def _scan_stmt(self, stmt: ast.stmt, guards: list[str],
                   acquired: set[str]) -> None:
        guard = guards[-1] if guards else (
            next(iter(acquired)) if acquired else None
        )
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_store(target, stmt.lineno, guard,
                                   augmented=False)
                if isinstance(target, ast.Name):
                    self.locals_seen.add(target.id)
            self._scan_expr(stmt.value, guards, acquired)
            self._note_local_type(stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._record_store(stmt.target, stmt.lineno, guard,
                                   augmented=False)
                self._scan_expr(stmt.value, guards, acquired)
            return
        if isinstance(stmt, ast.AugAssign):
            self._record_store(stmt.target, stmt.lineno, guard,
                               augmented=True)
            self._scan_expr(stmt.value, guards, acquired)
            return
        if isinstance(stmt, (ast.Delete,)):
            for target in stmt.targets:
                self._record_store(target, stmt.lineno, guard,
                                   augmented=True)
            return
        if isinstance(stmt, ast.For) and isinstance(
            stmt.target, ast.Name
        ):
            self.locals_seen.add(stmt.target.id)
            # ``for memo in _REGISTRY:`` — loop vars over an annotated
            # module container get the container's element type, so the
            # at-fork reinit pass can resolve ``memo._lock = Lock()``.
            if isinstance(stmt.iter, ast.Name):
                elem = self.model.elem_types.get(
                    (self.module.qualname, stmt.iter.id)
                )
                if elem is not None:
                    self._local_types[stmt.target.id] = elem
        # Compound statements: recurse into child blocks with the same
        # guard state; scan embedded expressions.
        for _field_name, value in ast.iter_fields(stmt):
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                self._scan_block(value, guards, set(acquired))
            elif isinstance(value, ast.expr):
                self._scan_expr(value, guards, acquired)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        self._scan_expr(item, guards, acquired)
                    elif isinstance(item, ast.excepthandler):
                        self._scan_block(item.body, guards,
                                         set(acquired))

    def _note_local_type(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            from repro.analysis.concurrency.contexts import _ctor_type
            typ = _ctor_type(stmt.value, self.module, self.model.project)
            if typ is not None:
                self._local_types[stmt.targets[0].id] = typ

    def _record_store(self, target: ast.expr, line: int,
                      guard: str | None, augmented: bool) -> None:
        # Plain rebind of a name or attribute is a single STORE op and
        # is atomic under the GIL; compound ops and container element
        # stores are read-modify-write and race.
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element, line, guard, augmented)
            return
        if isinstance(target, ast.Subscript):
            key = self._key_of(target.value)
            if key is not None:
                self._add_access(key, line, write=True, atomic=False,
                                 guard=guard, op="subscript store")
            return
        if isinstance(target, ast.Name):
            # Assignment to a bare name only touches a module global
            # when the function declared it ``global`` (otherwise the
            # name is a function local, whatever the module defines).
            if target.id not in self.declared_globals:
                return
        key = self._key_of(target)
        if key is None:
            return
        op = "augmented assignment (read-modify-write)" if augmented \
            else "rebind"
        self._add_access(key, line, write=True, atomic=not augmented,
                         guard=guard, op=op)

    def _scan_expr(self, expr: ast.expr, guards: list[str],
                   acquired: set[str]) -> None:
        guard = guards[-1] if guards else (
            next(iter(acquired)) if acquired else None
        )
        for item in ast.walk(expr):
            if isinstance(item, ast.Lambda):
                continue  # scanned as its own node
            if isinstance(item, ast.Call):
                self._scan_call(item, guard, bool(guards or acquired))
            elif isinstance(item, (ast.Name, ast.Attribute)) and \
                    isinstance(item.ctx, ast.Load):
                key = self._key_of(item)
                if key is not None:
                    self._add_access(key, item.lineno, write=False,
                                     atomic=True, guard=guard, op="read")

    def _scan_call(self, call: ast.Call, guard: str | None,
                   under_lock: bool) -> None:
        func = call.func
        # Mutating method on shared state: ``_REGISTRY.append(...)``.
        if isinstance(func, ast.Attribute) and \
                func.attr in MUTATING_METHODS:
            key = self._key_of(func.value)
            if key is not None:
                self._add_access(
                    key, call.lineno, write=True, atomic=False,
                    guard=guard, op=f".{func.attr}() mutation",
                )
        # Blocking primitives for CONC002.
        what: str | None = None
        chain = dotted_chain(func, self.module)
        if chain is not None and chain in BLOCKING_CHAINS:
            what = BLOCKING_CHAINS[chain]
        elif chain is not None and chain in BLOCKING_PROJECT:
            # Also resolved as a call edge when the callee module is
            # indexed; the rule dedupes by site. This chain match covers
            # callers linted without the full package in the index.
            what = BLOCKING_PROJECT[chain]
        elif isinstance(func, ast.Name) and func.id == "open":
            what = "sync file open"
        elif isinstance(func, ast.Attribute) and \
                func.attr in BLOCKING_ATTRS:
            if id(call) not in self._awaited:
                what = BLOCKING_ATTRS[func.attr]
        if what is not None:
            self.state.blocking.setdefault(
                self.node.qualname, [],
            ).append(BlockingCall(
                node=self.node, line=call.lineno, what=what,
                under_lock=under_lock,
            ))

    _awaited: frozenset[int] = frozenset()

    def collect_awaited(self) -> None:
        """Record calls that sit directly under ``await``."""
        body = self.node.body
        statements = body if isinstance(body, list) else [ast.Expr(body)]
        awaited: set[int] = set()
        for stmt in statements:
            for item in ast.walk(stmt):
                if isinstance(item, ast.Await) and isinstance(
                    item.value, ast.Call
                ):
                    awaited.add(id(item.value))
        self._awaited = frozenset(awaited)

    def _add_access(self, key: StateKey, line: int, write: bool,
                    atomic: bool, guard: str | None, op: str) -> None:
        in_init = self.in_init and key[0] == "field" and \
            self.node.owner is not None and key[1] == \
            self.node.owner.qualname
        self.state.accesses.append(Access(
            key=key, node=self.node, line=line, write=write,
            atomic=atomic, guard=guard, op=op, in_init=in_init,
        ))


def bind_guard_comments(
    model: ContextModel, state: StateModel,
    sources: dict[str, str],
) -> None:
    """Parse and bind guarded-by annotations per module source text."""
    project = model.project
    for info in project.by_qual.values():
        text = sources.get(info.path)
        if text is None:
            continue
        by_line, errors = parse_guard_comments(text)
        for line, message in errors:
            state.guard_issues.append(GuardIssue(
                path=info.path, line=line, message=message,
            ))
        if not by_line:
            continue
        claimed: set[int] = set()
        # Module-level globals.
        for stmt in info.tree.body:
            target_name: str | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target_name = stmt.targets[0].id
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                target_name = stmt.target.id
            if target_name is None:
                continue
            for line in range(stmt.lineno, (stmt.end_lineno or
                                            stmt.lineno) + 1):
                if line in by_line:
                    state.guard_decls[
                        ("global", info.qualname, target_name)
                    ] = by_line[line]
                    claimed.add(line)
        # Classes: class-line comments guard every field; class-body
        # AnnAssign and in-method self.x stores guard one field.
        for cls in project.classes.values():
            if cls.module_qual != info.qualname:
                continue
            class_node = _class_node(info.tree, cls.name)
            if class_node is None:
                continue
            header_end = class_node.body[0].lineno - 1 \
                if class_node.body else class_node.lineno
            for line in range(class_node.lineno, header_end + 1):
                if line in by_line:
                    lock = by_line[line]
                    claimed.add(line)
                    for attr in _class_attrs(class_node):
                        state.guard_decls.setdefault(
                            ("field", cls.qualname, attr), lock,
                        )
            for stmt in class_node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ) and stmt.lineno in by_line:
                    state.guard_decls[
                        ("field", cls.qualname, stmt.target.id)
                    ] = by_line[stmt.lineno]
                    claimed.add(stmt.lineno)
            for method in cls.methods.values():
                self_name = method.self_name
                if self_name is None:
                    continue
                for stmt in ast.walk(method.node):
                    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        continue
                    if stmt.lineno not in by_line:
                        continue
                    targets = stmt.targets if isinstance(
                        stmt, ast.Assign
                    ) else [stmt.target]
                    for target in targets:
                        if isinstance(target, ast.Attribute) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id == self_name:
                            state.guard_decls[
                                ("field", cls.qualname, target.attr)
                            ] = by_line[stmt.lineno]
                            claimed.add(stmt.lineno)
        for line, lock in by_line.items():
            if line not in claimed:
                state.guard_issues.append(GuardIssue(
                    path=info.path, line=line,
                    message=(
                        f"guarded-by[{lock}] is not attached to a "
                        "module global, class, or self-field assignment"
                    ),
                ))
    _validate_guard_locks(model, state)


def _class_node(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for item in ast.walk(tree):
        if isinstance(item, ast.ClassDef) and item.name == name:
            return item
    return None


def _class_attrs(class_node: ast.ClassDef) -> list[str]:
    attrs: list[str] = []
    for stmt in class_node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            attrs.append(stmt.target.id)
    for item in ast.walk(class_node):
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = item.args
            formals = [*args.posonlyargs, *args.args]
            self_name = formals[0].arg if formals else None
            for sub in ast.walk(item):
                if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    targets = sub.targets if isinstance(sub, ast.Assign) \
                        else [sub.target]
                    for target in targets:
                        if isinstance(target, ast.Attribute) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id == self_name:
                            attrs.append(target.attr)
    return attrs


def _validate_guard_locks(model: ContextModel, state: StateModel) -> None:
    """Soft check: a declared guard lock should exist in its scope."""
    # Known lock names per scope from the type maps.
    for (mod, name), typ in model.global_types.items():
        if typ == T_LOCK:
            state.known_locks.setdefault(("global", mod), set()).add(name)
    for (cls, attr), typ in model.field_types.items():
        if typ == T_LOCK:
            state.known_locks.setdefault(("field", cls), set()).add(attr)
    for key, lock in state.guard_decls.items():
        if lock == GIL_GUARD:
            continue
        kind, scope, _name = key
        scoped = state.known_locks.get((kind, scope), set())
        module_scope: set[str] = set()
        if kind == "field":
            cls = model.project.classes.get(scope)
            if cls is not None:
                module_scope = state.known_locks.get(
                    ("global", cls.module_qual), set(),
                )
        else:
            module_scope = scoped
        if lock not in scoped and lock not in module_scope:
            info = model.project.by_qual.get(
                scope if kind == "global" else
                (model.project.classes[scope].module_qual
                 if scope in model.project.classes else scope)
            )
            path = info.path if info is not None else "<unknown>"
            state.guard_issues.append(GuardIssue(
                path=path, line=1,
                message=(
                    f"guarded-by[{lock}] on {_render_key(key)} names a "
                    f"lock that is not defined in its scope"
                ),
            ))


def _render_key(key: StateKey) -> str:
    kind, scope, name = key
    return f"{scope}.{name}"


def _collect_shared_classes(model: ContextModel,
                            state: StateModel) -> None:
    """Escape analysis: which classes' instances are module-reachable."""
    project = model.project

    def mark(qual: str, why: str) -> None:
        if qual in state.shared_classes or qual not in project.classes:
            return
        state.shared_classes.add(qual)
        state.shared_why[qual] = why

    # Module-level instantiation / annotation.
    for (mod, name), typ in model.global_types.items():
        if not typ.startswith("#") and typ in project.classes:
            cls = project.classes[typ]
            mark(typ, f"instantiated at module level as {mod}.{name}")
    for (mod, name), typ in model.elem_types.items():
        if typ in project.classes:
            mark(typ, f"stored in module-level container {mod}.{name}")
    # self stored into a module global inside any method.
    for cls in project.classes.values():
        info = project.by_qual.get(cls.module_qual)
        if info is None:
            continue
        module_globals = {
            t.id
            for stmt in info.tree.body
            if isinstance(stmt, (ast.Assign, ast.AnnAssign))
            for t in (stmt.targets if isinstance(stmt, ast.Assign)
                      else [stmt.target])
            if isinstance(t, ast.Name)
        }
        for method in cls.methods.values():
            self_name = method.self_name
            if self_name is None:
                continue
            for item in ast.walk(method.node):
                stored = False
                where = ""
                if isinstance(item, ast.Call) and isinstance(
                    item.func, ast.Attribute
                ) and item.func.attr in MUTATING_METHODS:
                    receiver = item.func.value
                    if isinstance(receiver, ast.Name) and \
                            receiver.id in module_globals:
                        for arg in item.args:
                            if isinstance(arg, ast.Name) and \
                                    arg.id == self_name:
                                stored = True
                                where = f"registered into " \
                                        f"{info.qualname}.{receiver.id}"
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Subscript) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id in module_globals and \
                                isinstance(item.value, ast.Name) and \
                                item.value.id == self_name:
                            stored = True
                            where = f"stored into " \
                                    f"{info.qualname}.{target.value.id}"
                if stored:
                    mark(cls.qualname, where)
    # Instances constructed into module-level containers:
    # ``_HISTOGRAMS[name] = _HistogramState()``.
    for node in model.nodes.values():
        module_globals = {
            t.id
            for stmt in node.module.tree.body
            if isinstance(stmt, (ast.Assign, ast.AnnAssign))
            for t in (stmt.targets if isinstance(stmt, ast.Assign)
                      else [stmt.target])
            if isinstance(t, ast.Name)
        }
        body = node.body
        if not isinstance(body, list):
            continue
        for item in ast.walk(ast.Module(body=body, type_ignores=[])):
            if not isinstance(item, ast.Assign):
                continue
            from repro.analysis.concurrency.contexts import _ctor_type
            typ = _ctor_type(item.value, node.module, project)
            if typ is None or typ.startswith("#"):
                continue
            for target in item.targets:
                escapes = (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in module_globals
                ) or (
                    isinstance(target, ast.Name)
                    and target.id in module_globals
                    and target.id not in node.params
                )
                if escapes:
                    mark(typ, f"stored into a module-level container "
                              f"by {node.short}")
    # Transitive: fields of shared classes are shared.
    changed = True
    while changed:
        changed = False
        for (cls, attr), typ in model.field_types.items():
            if cls in state.shared_classes and \
                    not typ.startswith("#") and \
                    typ in project.classes and \
                    typ not in state.shared_classes:
                mark(typ, f"held by shared class "
                          f"{project.classes[cls].name} as .{attr}")
                changed = True


def _collect_resources(model: ContextModel, state: StateModel) -> None:
    """State keys that hold fork-unsafe resources.

    Runs after :func:`_collect_reinit`: a class whose resource fields
    are all rebuilt in an after-fork child callback does not make the
    globals that hold its instances fork-unsafe.
    """
    for (mod, name), typ in model.global_types.items():
        desc = _RESOURCE_TYPES.get(typ)
        if desc is not None:
            state.resources[("global", mod, name)] = desc
        elif typ in model.project.classes:
            fields = _class_resource_fields(model, state, typ)
            if fields:
                attr, field_desc = fields[0]
                state.resources[("global", mod, name)] = (
                    f"an instance of {model.project.classes[typ].name} "
                    f"(which holds {field_desc} '{attr}')"
                )
    for (cls, attr), typ in model.field_types.items():
        desc = _RESOURCE_TYPES.get(typ)
        if desc is not None:
            state.resources[("field", cls, attr)] = desc


def _class_resource_fields(
    model: ContextModel, state: StateModel, qual: str,
) -> list[tuple[str, str]]:
    """A class's fork-unsafe fields, minus ones reinitialized at fork."""
    return [
        (attr, _RESOURCE_TYPES[typ])
        for (cls, attr), typ in sorted(model.field_types.items())
        if cls == qual and typ in _RESOURCE_TYPES
        and ("field", cls, attr) not in state.reinit_keys
    ]


def _collect_reinit(model: ContextModel, state: StateModel) -> None:
    """State rewritten in after-fork child callbacks is fork-safe."""
    for entry in model.atfork_child:
        stack = [entry]
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node.qualname in seen:
                continue
            seen.add(node.qualname)
            for access in state.accesses:
                if access.node is node and access.write:
                    state.reinit_keys.add(access.key)
                    state.reinit_attrs.add(access.key[2])
            for edge in node.calls:
                stack.append(edge.callee)
            for lam in node.inline_lambdas:
                stack.append(lam)


def build_state(model: ContextModel,
                sources: dict[str, str]) -> StateModel:
    """Run every state collection pass for a solved context model."""
    state = StateModel()
    all_nodes = list(model.nodes.values()) + list(model.lambda_nodes)
    for node in all_nodes:
        scanner = _StateScanner(model, state, node)
        scanner.collect_awaited()
        scanner.scan()
    bind_guard_comments(model, state, sources)
    _collect_shared_classes(model, state)
    _collect_reinit(model, state)
    _collect_resources(model, state)
    return state
