"""Parsed-module container and the project-wide memoization index.

The cache-purity rules need cross-file knowledge: ``tests/`` call sites
mutating the return of ``build_array`` can only be flagged if the linter
knows ``build_array`` (defined in ``repro.array``) is memoized. The
:class:`ProjectIndex` is that knowledge, built in a cheap pre-pass over
every module before any rule runs.

A function is considered *memoized* when its body calls
``<memo>.get_or_compute(...)`` (the :class:`repro.fastpath.Memo`
protocol) or builds a cache key through ``stable_hash`` /
``config_key``. The compute callback handed to ``get_or_compute`` is
memoized by extension: its return value is the object the memo shares.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Key-derivation callables that mark the enclosing function as part of
#: the content-hash cache contract.
KEY_FUNCTIONS = frozenset({"stable_hash", "config_key"})


@dataclass(frozen=True)
class ModuleSource:
    """One parsed Python module."""

    path: str
    source: str
    tree: ast.Module


def _call_name(node: ast.expr) -> str | None:
    """Terminal name of a callable expression (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _compute_target(node: ast.expr) -> str | None:
    """Name of the compute callback passed to ``get_or_compute``.

    Handles the three idioms in the tree: a bare function reference, a
    bound-method reference (``self._solve``), and a zero-arg lambda
    closing over the arguments (``lambda: _solve(a, b)``).
    """
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _call_name(node)
    if isinstance(node, ast.Lambda) and isinstance(node.body, ast.Call):
        return _call_name(node.body.func)
    return None


@dataclass(frozen=True)
class ProjectIndex:
    """Cross-module facts the purity rules consume.

    Frozen bindings; the sets themselves are filled during
    :meth:`scan` and read-only afterwards.

    Attributes:
        memoized_defs: Names of function definitions whose bodies are
            subject to the purity contract (memo wrappers, compute
            callbacks, and key-building functions).
        memoized_callables: Names whose call (or attribute-access, for
            ``cached_property`` wrappers) results are shared memo
            entries and must not be mutated by callers.
    """

    memoized_defs: set[str] = field(default_factory=set)
    memoized_callables: set[str] = field(default_factory=set)

    def scan(self, module: ModuleSource) -> None:
        """Fold one module's memoization facts into the index."""
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                name = _call_name(inner.func)
                if name == "get_or_compute":
                    self.memoized_defs.add(node.name)
                    self.memoized_callables.add(node.name)
                    if len(inner.args) >= 2:
                        target = _compute_target(inner.args[1])
                        if target is not None:
                            self.memoized_defs.add(target)
                elif name in KEY_FUNCTIONS and node.name not in KEY_FUNCTIONS:
                    # Builds a content-hash key: part of the cache
                    # contract even if the memo lives elsewhere.
                    self.memoized_defs.add(node.name)


def build_index(modules: list[ModuleSource]) -> ProjectIndex:
    """Pre-pass: collect memoization facts across ``modules``."""
    index = ProjectIndex()
    for module in modules:
        index.scan(module)
    return index
