"""Run an :class:`~repro.serve.app.EvalServer` on a background thread.

The test suite, the load benchmark, and the CI smoke job all need a
real listening server inside one Python process — same-process servers
keep the shared :class:`~repro.engine.cache.EvalCache` and the fast-path
memos inspectable (and monkeypatchable) from the test body. The context
manager owns a daemon thread running a private event loop::

    with BackgroundServer(ServeConfig(port=0)) as server:
        client = server.client()
        client.evaluate(preset="niagara1")

Binding to port 0 picks a free ephemeral port; ``server.port`` reports
the real one.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.engine import EvalCache
from repro.serve.app import EvalServer, ServeConfig
from repro.serve.client import ServeClient


class BackgroundServer:
    """Context manager: a live server on a daemon thread.

    Args:
        config: Server tunables; defaults to an ephemeral port on
            localhost.
        cache: Optional shared cache, for tests that want to inspect or
            pre-warm it.
        startup_timeout_s: How long to wait for the socket to bind.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        cache: EvalCache | None = None,
        startup_timeout_s: float = 10.0,
    ) -> None:
        self.config = config or ServeConfig(port=0)
        self.server = EvalServer(self.config, cache=cache)
        self.startup_timeout_s = startup_timeout_s
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle -------------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to the starting thread
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        bound = await self.server.start()
        self._ready.set()
        try:
            async with bound:
                await self._stop.wait()
        finally:
            self.server.close()

    def start(self) -> "BackgroundServer":
        """Start the server thread and wait for the socket to bind."""
        self._thread = threading.Thread(
            target=self._run, name="serve-background", daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(self.startup_timeout_s):
            raise RuntimeError("background server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                "background server failed to start"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._loop is not None and self._thread is not None:
            stop = self._stop
            if self._thread.is_alive() and stop is not None:
                self._loop.call_soon_threadsafe(stop.set)
            self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- conveniences ----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self.server.port

    @property
    def cache(self) -> EvalCache:
        """The server's shared result cache."""
        return self.server.cache

    def client(self, timeout_s: float = 120.0) -> ServeClient:
        """A client pointed at this server."""
        return ServeClient(
            host=self.config.host, port=self.port, timeout_s=timeout_s,
        )
