"""McPAT as a long-running async evaluation service.

McPAT was designed to be driven repeatedly by external performance
simulators over an XML interface; this package is that interface for the
reproduction, shaped for sustained traffic instead of one-shot CLI
invocations: a stdlib-only HTTP/JSON service over asyncio streams that
batches concurrent requests onto the existing :mod:`repro.engine`
machinery and shares **one process-wide content-hash result cache**
across every client, so nothing is ever modeled twice.

Pieces:

* :mod:`repro.serve.app` — :class:`EvalServer` (routes, admission queue,
  per-request timeouts and trace ids, shared
  :class:`~repro.engine.cache.EvalCache`) and :class:`ServeConfig`.
* :mod:`repro.serve.http` — minimal HTTP/1.1 framing over asyncio
  streams (no ``http.server``).
* :mod:`repro.serve.client` — pure-stdlib :class:`ServeClient`, used by
  the tests and the load benchmark.
* :mod:`repro.serve.background` — :class:`BackgroundServer`, a live
  in-process server on a daemon thread for tests/benchmarks.

Start one from the CLI with ``mcpat-repro serve``, or in code::

    from repro.serve import ServeConfig, serve_forever

    serve_forever(ServeConfig(port=8080, concurrency=4))

Benchmark it with ``python benchmarks/bench_serve.py`` (writes
``BENCH_serve.json``: p50/p99 latency, reqs/s at saturation, cache hit
rate).
"""

from __future__ import annotations

from repro.serve.app import (
    RETRY_AFTER_S,
    EvalServer,
    ServeConfig,
    serve_forever,
)
from repro.serve.background import BackgroundServer
from repro.serve.client import ServeClient, ServeError
from repro.serve.http import HttpError, HttpRequest

__all__ = [
    "RETRY_AFTER_S",
    "BackgroundServer",
    "EvalServer",
    "HttpError",
    "HttpRequest",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "serve_forever",
]
