"""The evaluation service: routing, admission control, shared cache.

One :class:`EvalServer` owns the resources every request shares:

* a process-wide content-hash :class:`~repro.engine.cache.EvalCache`
  (optionally JSONL-backed), so a config any client evaluated before is
  never modeled again;
* a bounded admission queue — at most ``concurrency`` evaluations run
  at once, at most ``queue_limit`` wait; beyond that the server answers
  ``503`` with ``Retry-After`` instead of building unbounded backlog;
* a per-request timeout (``504`` on expiry; the admission slot is
  released so the pool stays healthy);
* a report-text memo keyed on the record's content hash, so a warm
  ``POST /evaluate`` re-renders nothing;
* per-request trace ids that ride the :mod:`repro.obs` span hierarchy —
  run the server with instrumentation on and every span of a request's
  evaluation hangs under its ``serve.request`` span.

Endpoints::

    GET  /healthz          liveness + queue occupancy
    GET  /metrics          metrics-registry snapshot (cache hit rates,
                           memo counters, serve request counters)
    POST /evaluate         one config -> EvalRecord (+ report text);
                           {"exact": false, "rel_tol": 0.02} admits the
                           learned surrogate tier (X-Eval-Tier response
                           header says which tier answered)
    POST /sweep            SweepSpec grid -> batched results; with
                           {"async": true} returns a job id instead;
                           {"backend": "numpy"|"auto"} opts into the
                           vectorized batch backend (scalar default)
    GET  /jobs/<id>        async sweep status/result

Evaluations run on a small thread pool behind the event loop. Model
evaluation is pure CPU-bound Python, so threads interleave rather than
parallelize; real fan-out comes from the engine's fork pool (``jobs``)
*inside* a sweep request. The shared cache and the fast-path memos are
safe under this interleaving (see :mod:`repro.engine.cache`).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro import fastpath, obs
from repro.chip import Processor, render_report_text
from repro.config import presets
from repro.config.loader import system_config_from_dict
from repro.config.schema import SystemConfig
from repro.engine import (
    EvalCache,
    EvalRecord,
    SweepSpec,
    evaluate_many,
    run_sweep,
)
from repro.perf import SPLASH2_PROFILES
from repro.perf.workload import Workload
from repro.serve.http import (
    HttpError,
    HttpRequest,
    encode_json,
    error_body,
    read_request,
    write_response,
)

#: Extra executor threads beyond the admission limit, so evaluations
#: stranded by a client-facing timeout (their thread keeps running to
#: completion) never starve freshly admitted requests.
_EXECUTOR_HEADROOM = 4

#: ``Retry-After`` seconds suggested to clients bounced by admission.
RETRY_AFTER_S = 1.0


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server instance.

    Attributes:
        host: Bind address.
        port: TCP port (0 = ephemeral, see ``EvalServer.port``).
        concurrency: Evaluations allowed to run at once.
        queue_limit: Requests allowed to wait for a slot; beyond this
            the server answers 503 with ``Retry-After``.
        timeout_s: Per-request wall-clock budget (504 on expiry).
        jobs: Engine worker processes available to one sweep request.
        cache_entries: In-memory capacity of the shared result cache.
        cache_path: Optional JSONL file backing the shared cache.
        default_depth: Report-tree depth when a request names none
            (matches the ``mcpat-repro report`` default).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    concurrency: int = 4
    queue_limit: int = 16
    timeout_s: float = 60.0
    jobs: int = 1
    cache_entries: int = 4096
    cache_path: str | None = None
    default_depth: int = 2

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")


class _Job:
    """Mutable state of one async sweep job."""

    __slots__ = ("job_id", "status", "result", "error", "submitted_s")

    def __init__(self, job_id: str, submitted_s: float) -> None:
        self.job_id = job_id
        self.status = "queued"
        self.result: Any = None
        self.error: str | None = None
        self.submitted_s = submitted_s

    def to_dict(self, now_s: float) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "job_id": self.job_id,
            "status": self.status,
            "age_s": max(0.0, now_s - self.submitted_s),
        }
        if self.status == "done":
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


class EvalServer:
    """The long-running evaluation service (see module docstring).

    Args:
        config: Server tunables.
        cache: Shared result cache; built from ``config`` when omitted.
            Pass one explicitly to share a cache with in-process callers
            (tests, the load benchmark).
        surrogate: The :class:`~repro.surrogate.tier.SurrogateTier`
            consulted by ``{"exact": false}`` requests. ``None`` (the
            default) uses the process-wide tier over the packaged model
            artifact; pass one explicitly to serve a custom model
            (tests, freshly trained artifacts).
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        cache: EvalCache | None = None,
        surrogate: "object | None" = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._surrogate = surrogate
        self.cache = cache if cache is not None else EvalCache(
            max_entries=self.config.cache_entries,
            path=self.config.cache_path,
        )
        self._report_memo = fastpath.Memo("serve.report_text",
                                          max_entries=256)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.concurrency + _EXECUTOR_HEADROOM,
            thread_name_prefix="serve-eval",
        )
        self._semaphore = asyncio.Semaphore(self.config.concurrency)
        self._waiting = 0
        self._active = 0
        self._request_ids = itertools.count(1)
        self._job_ids = itertools.count(1)
        self._jobs: dict[str, _Job] = {}
        self._job_tasks: set[asyncio.Task[None]] = set()
        self._counters: dict[str, float] = {}
        self._started_s = time.monotonic()
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> asyncio.AbstractServer:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self.handle_connection, host=self.config.host,
            port=self.config.port,
        )
        return self._server

    @property
    def port(self) -> int:
        """The actually bound TCP port (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        port: int = self._server.sockets[0].getsockname()[1]
        return port

    async def serve_forever(self) -> None:
        """Start and serve until cancelled."""
        server = await self.start()
        async with server:
            await server.serve_forever()

    def close(self) -> None:
        """Stop accepting connections and shut the evaluation pool down."""
        if self._server is not None:
            self._server.close()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- connection / dispatch ------------------------------------------

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one (possibly keep-alive) client connection."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.status,
                        error_body(exc.status, exc.message),
                        headers=exc.headers, keep_alive=False,
                    )
                    return
                if request is None:
                    return
                status, body, headers = await self._dispatch(request)
                await write_response(
                    writer, status, body,
                    headers=headers, keep_alive=request.keep_alive,
                )
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Loop shutdown cancels in-flight teardown; the socket
                # is closed either way.
                pass

    async def _dispatch(
        self, request: HttpRequest,
    ) -> tuple[int, bytes, tuple[tuple[str, str], ...]]:
        """Route one request; never raises."""
        trace_id = (
            request.headers.get("x-trace-id")
            or f"req-{next(self._request_ids):06d}"
        )
        self._count("serve.requests")
        started_s = time.perf_counter()
        extra_headers: tuple[tuple[str, str], ...] = ()
        with obs.span(
            "serve.request", category="serve",
            trace_id=trace_id, method=request.method, path=request.path,
        ):
            try:
                status, payload, extra_headers = await self._route(
                    request, trace_id,
                )
                body = encode_json(payload)
            except HttpError as exc:
                status = exc.status
                body = error_body(status, exc.message, trace_id=trace_id)
                extra_headers = exc.headers
            except asyncio.TimeoutError:
                status = 504
                self._count("serve.timeouts")
                body = error_body(
                    status,
                    f"evaluation exceeded the "
                    f"{self.config.timeout_s:g} s request budget",
                    trace_id=trace_id,
                )
            except Exception as exc:  # never kill the connection loop
                status = 500
                self._count("serve.errors")
                body = error_body(
                    status, f"{type(exc).__name__}: {exc}",
                    trace_id=trace_id,
                )
        obs.observe("serve.request_s", time.perf_counter() - started_s)
        self._count(f"serve.responses.{status}")
        headers = (("X-Trace-Id", trace_id),) + extra_headers
        return status, body, headers

    async def _route(
        self, request: HttpRequest, trace_id: str,
    ) -> tuple[int, Any, tuple[tuple[str, str], ...]]:
        method, path = request.method, request.path
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, self._healthz_payload(), ()
        if path == "/metrics":
            self._require(method, "GET", path)
            return 200, self.metrics_payload(), ()
        if path == "/evaluate":
            self._require(method, "POST", path)
            payload, headers = await self._handle_evaluate(
                request, trace_id,
            )
            return 200, payload, headers
        if path == "/sweep":
            self._require(method, "POST", path)
            status, payload = await self._handle_sweep(request, trace_id)
            return status, payload, ()
        if path.startswith("/jobs/"):
            self._require(method, "GET", path)
            return 200, self._handle_job(path[len("/jobs/"):]), ()
        raise HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise HttpError(
                405, f"{path} only accepts {expected}",
                headers=(("Allow", expected),),
            )

    def _count(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    # -- admission -------------------------------------------------------

    async def _admitted(
        self, work: Callable[[], Any], timeout_s: float | None = None,
    ) -> Any:
        """Run ``work`` on the evaluation pool under admission control.

        Raises:
            HttpError: 503 when the wait queue is full.
            asyncio.TimeoutError: When the request budget expires; the
                admission slot is released (the stranded worker thread
                finishes on its own — see ``_EXECUTOR_HEADROOM``).
        """
        if self._waiting >= self.config.queue_limit:
            self._count("serve.rejected")
            raise HttpError(
                503,
                f"admission queue is full "
                f"({self._active} running, {self._waiting} waiting); "
                f"retry shortly",
                headers=(("Retry-After", f"{RETRY_AFTER_S:g}"),),
            )
        self._waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
        self._active += 1
        budget_s = timeout_s if timeout_s is not None \
            else self.config.timeout_s
        loop = asyncio.get_running_loop()
        try:
            return await asyncio.wait_for(
                loop.run_in_executor(self._executor, work), budget_s,
            )
        finally:
            self._active -= 1
            self._semaphore.release()

    # -- request parsing -------------------------------------------------

    def _parse_config(
        self, payload: Mapping[str, Any],
    ) -> SystemConfig:
        """A config from a request body: ``preset`` name or inline dict."""
        preset = payload.get("preset")
        inline = payload.get("config")
        if (preset is None) == (inline is None):
            raise HttpError(
                400, "provide exactly one of 'preset' or 'config'"
            )
        if preset is not None:
            factory = presets.VALIDATION_PRESETS.get(preset)
            if factory is None:
                known = ", ".join(presets.VALIDATION_PRESETS)
                raise HttpError(
                    400, f"unknown preset {preset!r} (known: {known})"
                )
            return factory()
        if not isinstance(inline, Mapping):
            raise HttpError(400, "'config' must be a JSON object")
        try:
            return system_config_from_dict(dict(inline))
        except (KeyError, TypeError, ValueError) as exc:
            raise HttpError(
                400, f"malformed config: {exc!r}"
            ) from exc

    @staticmethod
    def _parse_workload(
        payload: Mapping[str, Any],
    ) -> Workload | None:
        name = payload.get("workload")
        if name is None:
            return None
        profile = SPLASH2_PROFILES.get(name)
        if profile is None:
            known = ", ".join(SPLASH2_PROFILES)
            raise HttpError(
                400, f"unknown workload {name!r} (known: {known})"
            )
        return profile

    # -- endpoints -------------------------------------------------------

    def _healthz_payload(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_s,
            "active_requests": self._active,
            "queued_requests": self._waiting,
            "concurrency": self.config.concurrency,
            "queue_limit": self.config.queue_limit,
        }

    def metrics_payload(self) -> dict[str, Any]:
        """The metrics-registry snapshot plus serve/cache counters.

        Always meaningful: cache and memo counters are maintained by
        their owners whether or not :mod:`repro.obs` instrumentation is
        enabled; span histograms appear only when it is.
        """
        extras = dict(self._counters)
        extras.update({
            "engine.cache.hits": float(self.cache.hits),
            "engine.cache.misses": float(self.cache.misses),
            "engine.cache.evictions": float(self.cache.evictions),
            "engine.cache.entries": float(len(self.cache)),
            "engine.cache.corrupt_lines_skipped": float(
                self.cache.corrupt_lines_skipped
            ),
        })
        snap = obs.snapshot(extra_counters=extras)
        payload = snap.to_dict()
        payload["uptime_s"] = time.monotonic() - self._started_s
        payload["active_requests"] = self._active
        payload["queued_requests"] = self._waiting
        return payload

    def _tier(self) -> "object | None":
        if self._surrogate is not None:
            return self._surrogate
        from repro.surrogate.tier import default_tier

        return default_tier()

    def _evaluate_work(
        self,
        config: SystemConfig,
        workload: Workload | None,
        want_report: bool,
        depth: int,
        exact: bool,
        rel_tol: float | None,
        parent_span_id: int | None,
    ) -> tuple[EvalRecord, str | None, float | None]:
        """Executor-side body of one ``/evaluate`` request."""
        with obs.attach(parent_span_id):
            tier = self._tier() if not exact else None
            record = evaluate_many(
                [config], workload=workload,
                jobs=1, cache=self.cache,
                exact=exact, rel_tol=rel_tol, surrogate=tier,
            )[0]
            rel_err_bound = None
            if record.backend == "surrogate" and tier is not None:
                # Re-derive the declared bound for the response body;
                # predict is deterministic and O(µs).
                prediction = tier.model.predict(config)
                if prediction.in_domain:
                    rel_err_bound = prediction.rel_err_bound
            report_text = None
            if want_report:
                report_text = self._report_memo.get_or_compute(
                    # record.key is config_key(config), so the key
                    # covers the config the render closes over.
                    # repro: keyed-by[config]
                    (record.key, depth),
                    lambda: render_report_text(
                        Processor(config), max_depth=depth,
                    ) + "\n",
                )
        return record, report_text, rel_err_bound

    async def _handle_evaluate(
        self, request: HttpRequest, trace_id: str,
    ) -> tuple[dict[str, Any], tuple[tuple[str, str], ...]]:
        payload = request.json()
        if not isinstance(payload, Mapping):
            raise HttpError(400, "request body must be a JSON object")
        config = self._parse_config(payload)
        workload = self._parse_workload(payload)
        exact = payload.get("exact", True)
        if not isinstance(exact, bool):
            raise HttpError(400, "'exact' must be a boolean")
        rel_tol = payload.get("rel_tol")
        if rel_tol is not None:
            if exact:
                raise HttpError(
                    400, "'rel_tol' only applies to approximate "
                         "evaluation; pass \"exact\": false",
                )
            if (
                isinstance(rel_tol, bool)
                or not isinstance(rel_tol, (int, float))
                or not rel_tol > 0
            ):
                raise HttpError(400, "'rel_tol' must be a positive number")
            rel_tol = float(rel_tol)
        raw_report = payload.get("report")
        want_report = exact if raw_report is None else bool(raw_report)
        if want_report and not exact:
            raise HttpError(
                400, "'report' requires exact evaluation: rendering the "
                     "component tree runs the full analytic model, which "
                     "defeats the surrogate tier",
            )
        depth = payload.get("depth", self.config.default_depth)
        if not isinstance(depth, int) or depth < 0:
            raise HttpError(400, "'depth' must be a non-negative integer")
        parent_span_id = obs.current_span_id()
        try:
            record, report_text, rel_err_bound = await self._admitted(
                lambda: self._evaluate_work(
                    config, workload, want_report, depth,
                    exact, rel_tol, parent_span_id,
                ),
            )
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        self._count("serve.evaluations")
        tier_name = (
            "surrogate" if record.backend == "surrogate" else "exact"
        )
        if tier_name == "surrogate":
            self._count("serve.evaluations_surrogate")
        response: dict[str, Any] = {
            "trace_id": trace_id,
            "record": record.to_dict(),
            "from_cache": record.from_cache,
            "tier": tier_name,
        }
        if rel_err_bound is not None:
            response["rel_err_bound"] = rel_err_bound
        if report_text is not None:
            response["report_text"] = report_text
        return response, (("X-Eval-Tier", tier_name),)

    def _sweep_work(
        self,
        spec: SweepSpec,
        workload: Workload | None,
        jobs: int,
        backend: str,
        parent_span_id: int | None,
    ) -> dict[str, Any]:
        """Executor-side body of one ``/sweep`` request."""
        with obs.attach(parent_span_id):
            results = run_sweep(
                spec, workload=workload, jobs=jobs, cache=self.cache,
                backend=backend,
            )
        return {
            "n_points": len(results),
            "points": [
                {
                    "overrides": result.overrides,
                    "record": result.record.to_dict(),
                    "from_cache": result.record.from_cache,
                }
                for result in results
            ],
        }

    async def _handle_sweep(
        self, request: HttpRequest, trace_id: str,
    ) -> tuple[int, dict[str, Any]]:
        payload = request.json()
        if not isinstance(payload, Mapping):
            raise HttpError(400, "request body must be a JSON object")
        base = self._parse_config(payload)
        workload = self._parse_workload(payload)
        axes = payload.get("axes")
        if not isinstance(axes, Mapping) or not axes:
            raise HttpError(
                400, "'axes' must be a non-empty object of "
                     "{axis name: [values...]}"
            )
        jobs = payload.get("jobs", 1)
        if not isinstance(jobs, int) or jobs < 1:
            raise HttpError(400, "'jobs' must be a positive integer")
        jobs = min(jobs, self.config.jobs)
        backend = payload.get("backend", "scalar")
        if backend not in ("auto", "scalar", "numpy"):
            raise HttpError(
                400, "'backend' must be one of: auto, scalar, numpy"
            )
        try:
            spec = SweepSpec.from_axes(base, dict(axes))
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc

        parent_span_id = obs.current_span_id()
        if not payload.get("async", False):
            result = await self._admitted(
                lambda: self._sweep_work(
                    spec, workload, jobs, backend, parent_span_id,
                ),
            )
            self._count("serve.sweeps")
            result["trace_id"] = trace_id
            return 200, result

        job = _Job(
            f"job-{next(self._job_ids):06d}",
            submitted_s=time.monotonic(),
        )
        self._jobs[job.job_id] = job
        task = asyncio.get_running_loop().create_task(
            self._run_job(
                job, spec, workload, jobs, backend, parent_span_id,
            ),
        )
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)
        self._count("serve.jobs_submitted")
        return 202, {
            "trace_id": trace_id,
            "job_id": job.job_id,
            "status": job.status,
        }

    async def _run_job(
        self,
        job: _Job,
        spec: SweepSpec,
        workload: Workload | None,
        jobs: int,
        backend: str,
        parent_span_id: int | None,
    ) -> None:
        """Drive one async sweep job through the same admission path."""
        try:
            job.status = "running"
            job.result = await self._admitted(
                lambda: self._sweep_work(
                    spec, workload, jobs, backend, parent_span_id,
                ),
            )
            job.status = "done"
        except HttpError as exc:
            job.status = "error"
            job.error = exc.message
        except asyncio.TimeoutError:
            job.status = "error"
            job.error = (
                f"sweep exceeded the {self.config.timeout_s:g} s budget"
            )
        except Exception as exc:
            job.status = "error"
            job.error = f"{type(exc).__name__}: {exc}"

    def _handle_job(self, job_id: str) -> dict[str, Any]:
        job = self._jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job.to_dict(now_s=time.monotonic())


async def _serve_main(server: EvalServer) -> None:
    await server.serve_forever()


def serve_forever(
    config: ServeConfig | None = None,
    cache: EvalCache | None = None,
) -> None:
    """Run a server in the foreground until interrupted (CLI entry)."""
    server = EvalServer(config, cache=cache)
    try:
        asyncio.run(_serve_main(server))
    finally:
        server.close()
