"""Minimal HTTP/1.1 framing over asyncio streams.

The serve tier speaks plain HTTP/JSON so any client — ``curl``, a
simulator harness, the bundled :mod:`repro.serve.client` — can drive it,
but it deliberately avoids ``http.server`` (blocking, thread-per-request)
in favor of :func:`asyncio.start_server` streams: one event loop admits
and schedules every request, which is what makes the admission queue and
per-request timeouts enforceable in one place.

This module is only the wire format: parse one request from a stream
(:func:`read_request`), write one response (:func:`write_response`).
Routing, queueing, and evaluation live in :mod:`repro.serve.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Iterable
from urllib.parse import parse_qsl, urlsplit

#: Largest accepted request body. Sweep specs are a few KB; anything
#: bigger than this is a client bug, not a workload.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for every status the service emits.
STATUS_REASONS: dict[int, str] = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request that cannot be served, mapped to an HTTP status.

    Attributes:
        status: HTTP status code to respond with.
        message: Human-readable error detail (goes into the JSON body).
        headers: Extra response headers (e.g. ``Retry-After``).
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Iterable[tuple[str, str]] = (),
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = tuple(headers)


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request.

    Attributes:
        method: Upper-cased HTTP method (``GET``, ``POST``, ...).
        path: URL path without the query string.
        query: Decoded query parameters (last value wins).
        headers: Headers with lower-cased names.
        body: Raw request body (empty for body-less requests).
    """

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response."""
        return self.headers.get("connection", "keep-alive") != "close"

    def json(self) -> Any:
        """Decode the body as JSON.

        Raises:
            HttpError: 400 when the body is empty or not valid JSON.
        """
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(
                400, f"request body is not valid JSON: {exc}"
            ) from exc


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Parse one HTTP/1.1 request from a stream.

    Returns:
        The parsed request, or None on a clean end-of-stream before any
        bytes arrived (client closed an idle keep-alive connection).

    Raises:
        HttpError: On a malformed request line/headers (400) or a body
            larger than ``max_body_bytes`` (413).
    """
    try:
        request_line = await reader.readline()
    except (ValueError, ConnectionError) as exc:
        raise HttpError(400, f"unreadable request line: {exc}") from exc
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, "malformed HTTP request line")
    method, target = parts[0].upper(), parts[1]

    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line:
            raise HttpError(400, "connection closed inside headers")
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body_bytes:
            raise HttpError(
                413, f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "connection closed inside body") from exc

    split = urlsplit(target)
    return HttpRequest(
        method=method,
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def encode_json(payload: Any) -> bytes:
    """Serialize a response payload as compact JSON plus a newline."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    headers: Iterable[tuple[str, str]] = (),
    keep_alive: bool = True,
) -> None:
    """Write one HTTP/1.1 response and flush the stream."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


def error_body(status: int, message: str, **extra: Any) -> bytes:
    """The canonical JSON error payload."""
    payload: dict[str, Any] = {
        "error": STATUS_REASONS.get(status, "error"),
        "detail": message,
    }
    payload.update(extra)
    return encode_json(payload)
