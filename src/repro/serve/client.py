"""Pure-stdlib client for the evaluation service.

Used by the test suite and the load benchmark, and small enough to
paste into an external simulator harness: one class over
:mod:`http.client`, JSON in, JSON out, with service errors surfaced as
:class:`ServeError` (carrying the HTTP status and any ``Retry-After``
hint) instead of raw socket plumbing.

Example::

    from repro.serve.client import ServeClient

    client = ServeClient(port=8080)
    result = client.evaluate(preset="niagara2")
    print(result["record"]["tdp_w"], "W")
    print(result["report_text"])          # == `mcpat-repro report` output
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Mapping, Sequence


class ServeError(RuntimeError):
    """A non-2xx service response.

    Attributes:
        status: HTTP status code.
        detail: The service's error detail text.
        retry_after_s: Parsed ``Retry-After`` header (None if absent).
    """

    def __init__(
        self,
        status: int,
        detail: str,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail
        self.retry_after_s = retry_after_s


class ServeClient:
    """Talk to one :class:`~repro.serve.app.EvalServer`.

    Args:
        host: Server address.
        port: Server port.
        timeout_s: Socket timeout for one request/response exchange.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout_s: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- plumbing --------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """One JSON round trip; raises :class:`ServeError` on non-2xx."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s,
        )
        headers = {"Content-Type": "application/json"}
        if trace_id is not None:
            headers["X-Trace-Id"] = trace_id
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
            retry_after_raw = response.getheader("Retry-After")
            response_headers = {
                name.lower(): value
                for name, value in response.getheaders()
            }
        finally:
            connection.close()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"detail": raw.decode("utf-8", "replace")}
        if status >= 400:
            retry_after_s = None
            if retry_after_raw is not None:
                try:
                    retry_after_s = float(retry_after_raw)
                except ValueError:
                    retry_after_s = None
            raise ServeError(
                status,
                str(decoded.get("detail", decoded)),
                retry_after_s=retry_after_s,
            )
        if not isinstance(decoded, dict):
            raise ServeError(status, f"non-object response: {decoded!r}")
        decoded["_status"] = status
        decoded["_headers"] = response_headers
        return decoded

    # -- endpoints -------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        """Liveness probe (``GET /healthz``)."""
        return self.request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        """Metrics snapshot (``GET /metrics``)."""
        return self.request("GET", "/metrics")

    def evaluate(
        self,
        preset: str | None = None,
        config: Mapping[str, Any] | None = None,
        workload: str | None = None,
        report: bool | None = None,
        depth: int | None = None,
        exact: bool = True,
        rel_tol: float | None = None,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """Evaluate one architecture config (``POST /evaluate``).

        Args:
            preset: A validation preset name (``niagara1``, ...).
            config: Inline config dict (exclusive with ``preset``), in
                :func:`repro.config.loader.system_config_to_dict` form.
            workload: Optional SPLASH-2 profile name for runtime metrics.
            report: Include the McPAT-style ``report_text`` breakdown
                (server default: yes for exact requests, no for
                approximate ones — reports require the full model).
            depth: Report-tree depth (server default when None).
            exact: ``False`` admits the server's learned surrogate tier;
                the response's ``tier`` field (and the ``X-Eval-Tier``
                header, see ``_headers``) says which tier answered, and
                surrogate answers carry ``rel_err_bound``.
            rel_tol: Relative error tolerance for ``exact=False`` — the
                surrogate only answers when its declared bound fits.
            trace_id: Propagate a caller-chosen trace id.
        """
        payload: dict[str, Any] = {}
        if report is not None:
            payload["report"] = report
        if not exact:
            payload["exact"] = False
        if rel_tol is not None:
            payload["rel_tol"] = rel_tol
        if preset is not None:
            payload["preset"] = preset
        if config is not None:
            payload["config"] = dict(config)
        if workload is not None:
            payload["workload"] = workload
        if depth is not None:
            payload["depth"] = depth
        return self.request(
            "POST", "/evaluate", payload, trace_id=trace_id,
        )

    def sweep(
        self,
        axes: Mapping[str, Sequence[Any]],
        preset: str | None = None,
        config: Mapping[str, Any] | None = None,
        workload: str | None = None,
        jobs: int = 1,
        backend: str | None = None,
        background: bool = False,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """Batch-evaluate a parameter grid (``POST /sweep``).

        ``backend`` selects the evaluation path (``"scalar"`` default;
        ``"numpy"``/``"auto"`` opt into the vectorized batch backend).
        With ``background=True`` the server answers immediately with a
        ``job_id``; poll it with :meth:`job` or :meth:`wait_job`.
        """
        payload: dict[str, Any] = {
            "axes": {name: list(values) for name, values in axes.items()},
            "jobs": jobs,
            "async": background,
        }
        if preset is not None:
            payload["preset"] = preset
        if config is not None:
            payload["config"] = dict(config)
        if workload is not None:
            payload["workload"] = workload
        if backend is not None:
            payload["backend"] = backend
        return self.request("POST", "/sweep", payload, trace_id=trace_id)

    def job(self, job_id: str) -> dict[str, Any]:
        """Status of one async sweep job (``GET /jobs/<id>``)."""
        return self.request("GET", f"/jobs/{job_id}")

    def wait_job(
        self,
        job_id: str,
        poll_interval_s: float = 0.05,
        timeout_s: float = 120.0,
    ) -> dict[str, Any]:
        """Poll a job until it finishes.

        Returns:
            The final job payload (``status`` is ``done`` or ``error``).

        Raises:
            TimeoutError: When the job is still running after
                ``timeout_s``.
        """
        deadline_s = time.monotonic() + timeout_s
        while True:
            state = self.job(job_id)
            if state.get("status") in ("done", "error"):
                return state
            if time.monotonic() >= deadline_s:
                raise TimeoutError(
                    f"job {job_id} still {state.get('status')!r} after "
                    f"{timeout_s:g} s"
                )
            time.sleep(poll_interval_s)
