"""Piecewise-affine frequency responses — the compiled numeric form.

Every TDP metric of a fixed chip structure is piecewise-affine in the
clock: dynamic power is ``rate * energy * f`` per component, and the only
kink is the shared-cache bank-saturation frequency where the per-cycle
access ceiling switches from bank-limited-constant to clock-limited (see
:meth:`repro.memsys.shared_cache.SharedCache.max_accesses_per_cycle`).
A :class:`PiecewiseAffine` stores one ``(anchor, value, slope)`` segment
per breakpoint interval; :meth:`value` evaluates one point in pure
Python and :meth:`values` evaluates a whole frequency axis at once with
numpy (``searchsorted`` + one fused multiply-add over the array).

The fit is *probed*, not re-derived: :mod:`repro.batch.compile` samples
the exact scalar model at the segment endpoints and validates the
midpoint of every segment, so a compiled response never silently
disagrees with the scalar reference beyond float roundoff.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Sequence


@dataclass(frozen=True)
class PiecewiseAffine:
    """One metric's response over a closed frequency interval.

    Attributes:
        breakpoints: Interior segment boundaries, strictly ascending (Hz).
            ``len(breakpoints) + 1`` segments cover the fitted interval.
        anchors: Per-segment reference abscissa (its left endpoint) (Hz).
        values: Metric value at each segment's anchor.
        slopes: Per-segment d(metric)/d(frequency).
    """

    breakpoints: tuple[float, ...]
    anchors: tuple[float, ...]
    values: tuple[float, ...]
    slopes: tuple[float, ...]

    def __post_init__(self) -> None:
        n_segments = len(self.breakpoints) + 1
        if not (len(self.anchors) == len(self.values)
                == len(self.slopes) == n_segments):
            raise ValueError(
                f"expected {n_segments} segment(s), got "
                f"{len(self.anchors)} anchors / {len(self.values)} values "
                f"/ {len(self.slopes)} slopes"
            )
        if any(b2 <= b1 for b1, b2 in zip(self.breakpoints,
                                          self.breakpoints[1:])):
            raise ValueError("breakpoints must be strictly ascending")

    @classmethod
    def constant(cls, value: float, anchor: float = 0.0) -> "PiecewiseAffine":
        """A flat response (single segment, zero slope)."""
        return cls(
            breakpoints=(), anchors=(anchor,), values=(value,),
            slopes=(0.0,),
        )

    def value(
        self, frequency_hz: float
    ) -> float:  # repro: dim[frequency_hz: hz]
        """Evaluate one frequency on the scalar (pure Python) path."""
        i = bisect.bisect_right(self.breakpoints, frequency_hz)
        return self.values[i] + self.slopes[i] * (
            frequency_hz - self.anchors[i]
        )

    def values_array(self, frequencies_hz: Sequence[float], np: Any) -> Any:
        """Evaluate a whole frequency axis at once (numpy array in/out)."""
        f = np.asarray(frequencies_hz, dtype=float)
        idx = np.searchsorted(
            np.asarray(self.breakpoints, dtype=float), f, side="right",
        )
        anchors = np.asarray(self.anchors, dtype=float)[idx]
        base = np.asarray(self.values, dtype=float)[idx]
        slopes = np.asarray(self.slopes, dtype=float)[idx]
        return base + slopes * (f - anchors)
