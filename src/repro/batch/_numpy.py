"""Guarded numpy import for the batch backend.

numpy is an *optional* extra (``pip install mcpat-repro[fast]``). Every
module in :mod:`repro.batch` goes through :func:`get_numpy` /
:func:`have_numpy` instead of importing numpy directly, so the package
imports cleanly — and the backend resolver falls back to the scalar
path — on installations without it. Tests monkeypatch :data:`_np` to
``None`` to exercise exactly that fallback on machines that do have
numpy installed.
"""

from __future__ import annotations

from typing import Any

try:  # pragma: no cover - exercised via both CI variants
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]


def get_numpy() -> Any:
    """The numpy module, or ``None`` when the extra is not installed."""
    return _np


def have_numpy() -> bool:
    """Whether the vectorized backend can run in this process."""
    return _np is not None
