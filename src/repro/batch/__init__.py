"""Structure-of-arrays batch evaluation backend.

McPAT's headline workload is design-space exploration: the same chip
structure evaluated at hundreds of operating points. This package splits
model *construction* from numeric *evaluation* so a sweep is array math
instead of a loop of full evaluations:

* :mod:`repro.batch.terms` — piecewise-affine frequency responses, the
  compiled numeric form (scalar and numpy evaluation).
* :mod:`repro.batch.kernels` — vectorized mirrors of the hot scalar
  formulas (``alpha*C*V^2*f``, Elmore/Bakoglu wire terms, leakage
  curves); each is parity-tested against its scalar twin.
* :mod:`repro.batch.compile` — probes the exact scalar model per
  structure group, fits the closed forms, and validates every
  assumption with held-out probes (:class:`BatchFallback` on residual).
* :mod:`repro.batch.backend` — backend resolution (``scalar`` |
  ``numpy`` | ``auto``) and group orchestration for
  :func:`repro.engine.evaluate_many`.

The scalar path remains the bit-identical reference; the numpy backend
promises agreement within 1e-9 relative (enforced by the parity suite
over all four validation presets) and falls back to scalar — never
approximates silently — when a group violates its closed-form
assumptions. numpy itself is an optional extra (``pip install
mcpat-repro[fast]``); without it every request resolves to scalar.
"""

from repro.batch._numpy import get_numpy, have_numpy
from repro.batch.backend import (
    BACKENDS,
    GROUP_AXES,
    counters,
    evaluate_batch,
    reset_counters,
    resolve_backend,
    structure_key,
)
from repro.batch.compile import (
    BatchFallback,
    CompiledGroup,
    METRICS,
    compile_group,
)
from repro.batch.terms import PiecewiseAffine

__all__ = [
    "BACKENDS",
    "BatchFallback",
    "CompiledGroup",
    "GROUP_AXES",
    "METRICS",
    "PiecewiseAffine",
    "compile_group",
    "counters",
    "evaluate_batch",
    "get_numpy",
    "have_numpy",
    "reset_counters",
    "resolve_backend",
    "structure_key",
]
