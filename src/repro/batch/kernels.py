"""Vectorized circuit/technology kernels (structure-of-arrays form).

Each function mirrors one scalar formula from the model layers —
``alpha * C * V^2 * f`` switching power, the Elmore repeated-wire segment
delay and its Bakoglu closed-form sizing
(:class:`repro.circuit.repeater.RepeatedWire`), and the leakage curves of
:class:`repro.tech.device.DeviceParameters` — but accepts numpy arrays
anywhere it accepts floats, evaluating a whole sweep axis per call. The
scalar implementations stay the bit-identical reference; the parity
suite asserts every kernel agrees with its scalar twin element-wise.

:func:`leakage_temperature_scale` is the production workhorse: the group
compiler (:mod:`repro.batch.compile`) uses it to evaluate chip leakage
over a whole temperature axis from two probed endpoints. The wire
kernels are the building blocks for vectorizing the structure-changing
axes (cache geometry, NoC reach) in a later pass.
"""

from __future__ import annotations

import math
from typing import Any, Union

from repro.batch._numpy import get_numpy
from repro.circuit.gates import DELAY_DERATE, SHORT_CIRCUIT_FRACTION
from repro.tech.device import (
    _SUBTHRESHOLD_TEMPERATURE_EFOLD_K as TEMPERATURE_EFOLD_K,
)

#: A float or a numpy array of floats (numpy is optional, hence ``Any``).
ArrayLike = Union[float, Any]


def _exp(x: ArrayLike) -> ArrayLike:
    np = get_numpy()
    if np is not None and isinstance(x, np.ndarray):
        return np.exp(x)
    return math.exp(x)


def _sqrt(x: ArrayLike) -> ArrayLike:
    np = get_numpy()
    if np is not None and isinstance(x, np.ndarray):
        return np.sqrt(x)
    return math.sqrt(x)


def switching_power(
    capacitance_f: ArrayLike,
    vdd_v: ArrayLike,
    clock_hz: ArrayLike,
    activity: ArrayLike = 1.0,
) -> ArrayLike:  # repro: dim[activity: 1, return: w]
    """Dynamic switching power ``alpha * C * V^2 * f`` (W).

    ``capacitance_f`` is the effective switched capacitance including the
    short-circuit surcharge the gate model applies
    (:data:`~repro.circuit.gates.SHORT_CIRCUIT_FRACTION`); pass
    :func:`gate_effective_capacitance` output to match
    :meth:`repro.circuit.gates.Gate.switching_energy` exactly.
    """
    return activity * capacitance_f * vdd_v * vdd_v * clock_hz


def gate_effective_capacitance(
    self_capacitance_f: ArrayLike,
    input_capacitance_f: ArrayLike,
    load_capacitance_f: ArrayLike,
) -> ArrayLike:  # repro: dim[return: f]
    """Switched capacitance of one gate transition, incl. short circuit (F).

    Mirrors :meth:`repro.circuit.gates.Gate.switching_energy`'s
    ``(1 + SHORT_CIRCUIT_FRACTION) * (c_self + c_in + c_load)`` so that
    ``switching_power(gate_effective_capacitance(...), vdd, f)`` equals
    ``gate.switching_energy(c_load) * f``.
    """
    total = (
        self_capacitance_f + input_capacitance_f + load_capacitance_f
    )
    return (1.0 + SHORT_CIRCUIT_FRACTION) * total


def subthreshold_leakage_power(
    i_off_per_width: ArrayLike,
    nmos_width_m: ArrayLike,
    vdd_v: ArrayLike,
) -> ArrayLike:  # repro: dim[i_off_per_width: a/m, return: w]
    """Subthreshold leakage ``i_off * width * vdd`` (W).

    Mirrors :meth:`repro.tech.technology.Technology.subthreshold_leakage_power`.
    """
    return i_off_per_width * nmos_width_m * vdd_v


def gate_leakage_power(
    i_gate_per_width: ArrayLike,
    nmos_width_m: ArrayLike,
    vdd_v: ArrayLike,
) -> ArrayLike:  # repro: dim[i_gate_per_width: a/m, return: w]
    """Gate-tunneling leakage ``i_gate * width * vdd`` (W).

    Mirrors :meth:`repro.tech.technology.Technology.gate_leakage_power`.
    """
    return i_gate_per_width * nmos_width_m * vdd_v


def leakage_temperature_scale(
    temperature_k: ArrayLike,
    reference_temperature_k: ArrayLike,
) -> ArrayLike:  # repro: dim[return: 1]
    """Subthreshold leakage multiplier ``exp(dT / 35 K)`` vs the reference.

    Mirrors :meth:`repro.tech.device.DeviceParameters.at_temperature`:
    ``i_off`` grows e-fold every 35 K; gate leakage is temperature
    independent. Chip leakage at a fixed structure is therefore exactly
    ``G + S * leakage_temperature_scale(T, T_ref)`` — the affine-in-
    ``exp`` form the group compiler fits from two probed temperatures.
    """
    delta = temperature_k - reference_temperature_k
    return _exp(delta / TEMPERATURE_EFOLD_K)


def overdrive_current_scale(
    vdd_v: ArrayLike,
    vth_v: ArrayLike,
    nominal_vdd_v: ArrayLike,
) -> ArrayLike:  # repro: dim[return: 1]
    """Alpha-power-law drive-current multiplier at a scaled supply.

    Mirrors :meth:`repro.tech.device.DeviceParameters.at_voltage`:
    ``I_on ~ ((vdd - vth) / (vdd_nom - vth))^1.3``. Voltage changes the
    transistor operating point and therefore re-sizes every repeater and
    gate, so the batch backend treats Vdd as a *group* axis (one exact
    structure rebuild per distinct value) rather than interpolating with
    this kernel; it exists for kernel-level studies and the parity suite.
    """
    return ((vdd_v - vth_v) / (nominal_vdd_v - vth_v)) ** 1.3


def elmore_segment_delay(
    drive_resistance_ohm: ArrayLike,
    self_capacitance_f: ArrayLike,
    input_capacitance_f: ArrayLike,
    resistance_per_length: ArrayLike,
    capacitance_per_length: ArrayLike,
    spacing_m: ArrayLike,
) -> ArrayLike:  # repro: dim[resistance_per_length: ohm/m, capacitance_per_length: f/m, return: s]
    """Elmore delay of one repeater + wire segment (s).

    Mirrors :meth:`repro.circuit.repeater.RepeatedWire._segment_delay`:
    the derated driver RC into its parasitics, the wire, and the next
    repeater's gate, plus the distributed-wire ``0.38 RC`` term.
    """
    r_seg = resistance_per_length * spacing_m
    c_seg = capacitance_per_length * spacing_m
    driver = DELAY_DERATE * 0.69 * drive_resistance_ohm * (
        self_capacitance_f + c_seg + input_capacitance_f
    )
    wire_term = r_seg * (
        0.38 * c_seg + 0.69 * input_capacitance_f
    )
    return driver + wire_term


def bakoglu_repeater_sizing(
    drive_resistance_ohm: ArrayLike,
    self_capacitance_f: ArrayLike,
    input_capacitance_f: ArrayLike,
    resistance_per_length: ArrayLike,
    capacitance_per_length: ArrayLike,
) -> tuple[ArrayLike, ArrayLike]:  # repro: dim[resistance_per_length: ohm/m, capacitance_per_length: f/m]
    """Closed-form (size, spacing) of a delay-optimal repeated wire.

    Mirrors :meth:`repro.circuit.repeater.RepeatedWire.closed_form_optimum`
    for a unit inverter with the given constants: the per-length delay is
    the separable posynomial ``A/L + B/s + C*L + E*s`` whose optimum is
    ``s* = sqrt(B/E)``, ``L* = sqrt(A/C)``. Sizes are min-inverter
    multiples; spacings are meters.
    """
    r_drive = DELAY_DERATE * 0.69 * drive_resistance_ohm
    term_per_wire = r_drive * (self_capacitance_f + input_capacitance_f)
    term_per_size = r_drive * capacitance_per_length
    term_len = 0.38 * resistance_per_length * capacitance_per_length
    term_size = 0.69 * resistance_per_length * input_capacitance_f
    size = _sqrt(term_per_size / term_size)
    spacing_m = _sqrt(term_per_wire / term_len)
    return size, spacing_m
