"""Compile one sweep group into closed-form frequency/temperature terms.

The batch backend partitions a grid into *groups* of points sharing one
chip structure (everything but ``clock_hz`` and ``temperature_k``).
Within a group, model construction — array organization search, repeater
sizing, floorplanning — is identical for every point, and the TDP
metrics depend on the varying parameters in closed form:

* **Frequency**: every dynamic-power term is ``rate * energy * f``; the
  only kink is a shared cache's bank-saturation frequency
  ``1 / max(access_time, cycle_time)`` where the access ceiling switches
  from clock-limited to bank-limited. Each metric is therefore exactly
  piecewise-affine in ``f`` with known breakpoints.
* **Temperature**: only subthreshold leakage moves, e-folding every
  35 K (:func:`repro.batch.kernels.leakage_temperature_scale`), so chip
  leakage is exactly ``G + S * exp(dT / 35 K)`` and every other metric
  is temperature-invariant.

Rather than re-deriving those coefficients from the component models
(fragile against model evolution), :func:`compile_group` *probes* the
exact scalar model: it builds one :class:`~repro.chip.processor.Processor`
per distinct temperature and samples
``report(None, clock_hz=f)`` at each segment's endpoints, then
**validates** every closed-form assumption against held-out probes — the
midpoint of every frequency segment, a dynamic/area probe per extra
temperature, and the median temperature of an exp fit. Any residual
above float-roundoff scale raises :class:`BatchFallback` and the caller
re-runs the group through the scalar path, so the vectorized backend can
be wrong about the model only by *falling back*, never by answering.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro import obs
from repro.batch.kernels import leakage_temperature_scale
from repro.batch.terms import PiecewiseAffine
from repro.config.schema import SystemConfig
from repro.tech.device import LEAKAGE_REFERENCE_TEMPERATURE_K

#: The EvalRecord metrics a compiled group reproduces.
METRICS = (
    "area_mm2",
    "tdp_w",
    "peak_dynamic_w",
    "leakage_w",
    "core_area_mm2",
    "core_peak_dynamic_w",
    "core_leakage_w",
)

#: Metrics that shift with temperature (through subthreshold leakage).
_LEAKY_METRICS = frozenset({"tdp_w", "leakage_w", "core_leakage_w"})

#: Relative residual above which a fitted response is rejected. The fit
#: reconstructs exact affine arithmetic, so genuine residuals are a few
#: ulp (~1e-15); anything past this tolerance means the model has a
#: dependence the compiler does not know about.
_FIT_REL_TOL = 1e-11

#: Tolerance for metrics that must not move with temperature at all.
_T_INVARIANT_REL_TOL = 1e-12

#: Extra temperatures beyond which leakage is fitted as
#: ``G + S * exp(dT/35K)`` from two probes instead of probed per value.
_MAX_PROBED_TEMPERATURES = 3

#: Relative spacing below which two frequencies are one probe point.
_MIN_SEGMENT_REL_SPAN = 1e-9


class BatchFallback(Exception):
    """A group cannot be compiled exactly; evaluate it on the scalar path."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _probe(processor: Any, clock_hz: float) -> dict[str, float]:
    """Sample the exact scalar model at one clock (mirrors evaluate_config)."""
    report = processor.report(None, clock_hz=clock_hz)
    core_result = processor.core.result(clock_hz, None)
    return {
        "area_mm2": report.total_area * 1e6,
        "tdp_w": report.total_peak_power,
        "peak_dynamic_w": report.total_peak_dynamic_power,
        "leakage_w": report.total_leakage_power,
        "core_area_mm2": core_result.total_area * 1e6,
        "core_peak_dynamic_w": core_result.total_peak_dynamic_power,
        "core_leakage_w": core_result.total_leakage_power,
    }


def _check(
    label: str,
    predicted: float,
    actual: float,
    rel_tol: float,
) -> None:
    scale = max(abs(actual), abs(predicted), 1e-30)
    if abs(predicted - actual) > rel_tol * scale:
        raise BatchFallback(
            f"{label}: fitted value {predicted!r} disagrees with the "
            f"scalar model's {actual!r} beyond {rel_tol:g} relative"
        )


@dataclass(frozen=True)
class CompiledGroup:
    """Closed-form TDP metrics of one chip structure.

    Attributes:
        name: The group's chip label (every point shares it).
        t_ref_k: Temperature the frequency responses were fitted at.
        responses: Metric name -> piecewise-affine frequency response,
            valid on the fitted ``[f_lo, f_hi]`` interval at ``t_ref_k``.
        leak_deltas_w: Distinct temperature -> (chip leakage delta,
            core leakage delta) relative to ``t_ref_k``. Applies to
            ``leakage_w``/``core_leakage_w`` and, because dynamic power
            is temperature-invariant, equally to ``tdp_w``.
        n_probes: Scalar model samples spent compiling (for the
            amortization counters).
    """

    name: str
    t_ref_k: float
    responses: Mapping[str, PiecewiseAffine]
    leak_deltas_w: Mapping[float, tuple[float, float]]
    n_probes: int

    def evaluate(
        self,
        points: Sequence[tuple[float, float]],
        np: Any,
    ) -> dict[str, Any]:
        """Metric arrays for ``(clock_hz, temperature_k)`` points at once."""
        f = np.asarray([p[0] for p in points], dtype=float)
        temps = sorted(self.leak_deltas_w)
        t_index = {t: i for i, t in enumerate(temps)}
        idx = np.asarray([t_index[p[1]] for p in points], dtype=int)
        chip_delta = np.asarray(
            [self.leak_deltas_w[t][0] for t in temps], dtype=float,
        )[idx]
        core_delta = np.asarray(
            [self.leak_deltas_w[t][1] for t in temps], dtype=float,
        )[idx]

        out = {
            name: response.values_array(f, np)
            for name, response in self.responses.items()
        }
        out["tdp_w"] = out["tdp_w"] + chip_delta
        out["leakage_w"] = out["leakage_w"] + chip_delta
        out["core_leakage_w"] = out["core_leakage_w"] + core_delta
        return out


def _frequency_boundaries(
    processor: Any, f_lo: float, f_hi: float,
) -> list[float]:
    """Segment boundaries: the span endpoints plus interior cache kinks."""
    boundaries = [f_lo]
    kinks: set[float] = set()
    for cache in (processor.l2, processor.l3):
        if cache is None:
            continue
        occupancy = max(cache.cache.access_time, cache.cache.cycle_time)
        if occupancy > 0:
            kinks.add(1.0 / occupancy)
    for kink in sorted(kinks):
        if (kink > boundaries[-1] * (1.0 + _MIN_SEGMENT_REL_SPAN)
                and kink < f_hi * (1.0 - _MIN_SEGMENT_REL_SPAN)):
            boundaries.append(kink)
    boundaries.append(f_hi)
    return boundaries


def _fit_frequency_responses(
    processor: Any,
    frequencies: Sequence[float],
    probes: dict[float, dict[str, float]],
) -> dict[str, PiecewiseAffine]:
    """Fit every metric over the frequency span, validating midpoints."""
    f_lo, f_hi = frequencies[0], frequencies[-1]

    def probe_at(f: float) -> dict[str, float]:
        if f not in probes:
            probes[f] = _probe(processor, f)
        return probes[f]

    if f_hi <= f_lo * (1.0 + _MIN_SEGMENT_REL_SPAN):
        sample = probe_at(f_lo)
        return {
            name: PiecewiseAffine.constant(sample[name], anchor=f_lo)
            for name in METRICS
        }

    boundaries = _frequency_boundaries(processor, f_lo, f_hi)
    breakpoints = tuple(boundaries[1:-1])
    anchors: dict[str, list[float]] = {name: [] for name in METRICS}
    values: dict[str, list[float]] = {name: [] for name in METRICS}
    slopes: dict[str, list[float]] = {name: [] for name in METRICS}
    for lo, hi in zip(boundaries, boundaries[1:]):
        lo_sample, hi_sample = probe_at(lo), probe_at(hi)
        mid = 0.5 * (lo + hi)
        mid_sample = probe_at(mid)
        for name in METRICS:
            slope = (hi_sample[name] - lo_sample[name]) / (hi - lo)
            _check(
                f"{name} at {mid:g} Hz",
                lo_sample[name] + slope * (mid - lo),
                mid_sample[name],
                _FIT_REL_TOL,
            )
            anchors[name].append(lo)
            values[name].append(lo_sample[name])
            slopes[name].append(slope)
    return {
        name: PiecewiseAffine(
            breakpoints=breakpoints,
            anchors=tuple(anchors[name]),
            values=tuple(values[name]),
            slopes=tuple(slopes[name]),
        )
        for name in METRICS
    }


def _leak_deltas(
    config: SystemConfig,
    temperatures: Sequence[float],
    f_probe: float,
    ref_sample: dict[str, float],
    probe_count: list[int],
) -> dict[float, tuple[float, float]]:
    """(chip, core) leakage offsets vs the reference temperature.

    Up to :data:`_MAX_PROBED_TEMPERATURES` extra temperatures are probed
    exactly; longer axes are fitted with the ``G + S * exp(dT/35K)``
    leakage curve from the endpoint probes and validated at the median.
    Every probed temperature also validates that the remaining metrics
    did not move (a temperature-sensitive organization search would).
    """
    from repro.chip import Processor

    t_ref = temperatures[0]
    deltas: dict[float, tuple[float, float]] = {t_ref: (0.0, 0.0)}
    others = list(temperatures[1:])
    if not others:
        return deltas

    def probe_temperature(t: float) -> tuple[float, float]:
        processor = Processor(dataclasses.replace(
            config, clock_hz=f_probe, temperature_k=t,
        ))
        sample = _probe(processor, f_probe)
        probe_count[0] += 1
        for name in METRICS:
            if name in _LEAKY_METRICS:
                continue
            _check(
                f"{name} at {t:g} K (expected temperature-invariant)",
                ref_sample[name], sample[name], _T_INVARIANT_REL_TOL,
            )
        chip = sample["leakage_w"] - ref_sample["leakage_w"]
        core = sample["core_leakage_w"] - ref_sample["core_leakage_w"]
        # tdp = dynamic + leakage, so its shift must equal the chip
        # leakage shift; a disagreement means dynamic moved with T.
        _check(
            f"tdp_w at {t:g} K (expected to shift with leakage only)",
            ref_sample["tdp_w"] + chip, sample["tdp_w"], _FIT_REL_TOL,
        )
        return chip, core

    if len(others) <= _MAX_PROBED_TEMPERATURES:
        for t in others:
            deltas[t] = probe_temperature(t)
        return deltas

    # Long axis: fit S from the endpoints of exp(dT/35K) space, validate
    # at the median, and evaluate the whole tail with the kernel.
    t_hi = others[-1]
    t_med = others[len(others) // 2]
    scale_ref = leakage_temperature_scale(
        t_ref, LEAKAGE_REFERENCE_TEMPERATURE_K,
    )
    scale_hi = leakage_temperature_scale(
        t_hi, LEAKAGE_REFERENCE_TEMPERATURE_K,
    )
    if scale_hi <= scale_ref:
        raise BatchFallback(
            f"temperature axis is not ascending past {t_ref:g} K"
        )
    chip_hi, core_hi = probe_temperature(t_hi)
    chip_slope = chip_hi / (scale_hi - scale_ref)
    core_slope = core_hi / (scale_hi - scale_ref)

    chip_med, core_med = probe_temperature(t_med)
    scale_med = leakage_temperature_scale(
        t_med, LEAKAGE_REFERENCE_TEMPERATURE_K,
    )
    _check(
        f"chip leakage exp-fit at {t_med:g} K",
        chip_slope * (scale_med - scale_ref), chip_med, _FIT_REL_TOL,
    )
    _check(
        f"core leakage exp-fit at {t_med:g} K",
        core_slope * (scale_med - scale_ref), core_med, _FIT_REL_TOL,
    )
    deltas[t_hi] = (chip_hi, core_hi)
    deltas[t_med] = (chip_med, core_med)
    for t in others:
        if t in deltas:
            continue
        shift = (
            leakage_temperature_scale(t, LEAKAGE_REFERENCE_TEMPERATURE_K)
            - scale_ref
        )
        deltas[t] = (chip_slope * shift, core_slope * shift)
    return deltas


def compile_group(
    config: SystemConfig,
    frequencies: Sequence[float],
    temperatures: Sequence[float],
) -> CompiledGroup:
    """Probe and fit one structure group.

    Args:
        config: A representative config of the group (its ``clock_hz``
            and ``temperature_k`` are ignored in favor of the axes).
        frequencies: Distinct ascending clock values of the group (Hz).
        temperatures: Distinct ascending temperatures of the group (K).

    Raises:
        BatchFallback: When any validation probe disagrees with the
            fitted closed form — the caller evaluates the group through
            the scalar path instead.
    """
    from repro.chip import Processor

    if not frequencies or not temperatures:
        raise BatchFallback("a group needs at least one (f, T) point")
    f_lo = frequencies[0]
    t_ref = temperatures[0]
    with obs.span(
        "batch.compile_group", category="batch", chip=config.name,
        frequencies=len(frequencies), temperatures=len(temperatures),
    ):
        processor = Processor(dataclasses.replace(
            config, clock_hz=f_lo, temperature_k=t_ref,
        ))
        probes: dict[float, dict[str, float]] = {}
        responses = _fit_frequency_responses(
            processor, frequencies, probes,
        )
        probe_count = [len(probes)]
        leak_deltas = _leak_deltas(
            config, temperatures, f_lo, probes[f_lo], probe_count,
        )
        return CompiledGroup(
            name=config.name,
            t_ref_k=t_ref,
            responses=responses,
            leak_deltas_w=leak_deltas,
            n_probes=probe_count[0],
        )
