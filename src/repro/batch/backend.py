"""Backend selection and group orchestration for batch evaluation.

The engine asks this module two questions: which backend a request
resolves to (:func:`resolve_backend` — ``numpy`` silently degrades to
``scalar`` when the optional extra is missing), and what a batch of
pending ``(key, config)`` points evaluates to (:func:`evaluate_batch`).

:func:`evaluate_batch` partitions the points by *structure key* — the
content hash of everything except ``clock_hz`` and ``temperature_k`` —
compiles each group once (:func:`repro.batch.compile.compile_group`),
and evaluates the group's frequency/temperature axis as numpy arrays.
Points the backend cannot (or should not) vectorize come back as
leftovers for the exact scalar path: groups too small to amortize a
compile, groups whose validation probes fail, and anything with a
workload attached (runtime simulation is per-point by nature).

Module-level counters mirror the :mod:`repro.fastpath` idiom: they are
registered as a pull-side metrics collector, so ``GET /metrics`` and
``sweep --profile`` report how many points vectorized, how many fell
back, and what the compile amortization looked like.
"""

from __future__ import annotations

from typing import Sequence

from repro import fastpath, obs
from repro.batch._numpy import get_numpy, have_numpy
from repro.batch.compile import (
    BatchFallback,
    compile_group,
)
from repro.config.loader import system_config_to_dict
from repro.config.schema import SystemConfig
from repro.engine.record import EvalRecord
from repro.obs import metrics as _obs_metrics

#: Backend names accepted by ``resolve_backend`` (besides ``auto``).
BACKENDS = ("scalar", "numpy")

#: Top-level config fields a compiled group evaluates in closed form;
#: everything else defines the group's structure.
GROUP_AXES = ("clock_hz", "temperature_k")

#: A group must have this many points, and twice as many points as
#: distinct temperatures, before compiling beats the per-point loop
#: (compile costs ~1 construction per temperature plus a handful of
#: report probes; a scalar point costs a construction each).
_MIN_GROUP_POINTS = 4
_MIN_POINTS_PER_TEMPERATURE = 2

_COUNTER_NAMES = (
    "groups_compiled",
    "groups_fallback",
    "points_vectorized",
    "points_fallback",
    "compile_probes",
    "numpy_unavailable",
)

_counters: dict[str, float] = {name: 0.0 for name in _COUNTER_NAMES}

#: Compiled groups memoized across chunks and sweeps, keyed by the
#: *content* hash of the structure plus the exact frequency/temperature
#: sets — a compile is a pure function of those, so re-running a grid
#: (or the next chunk of one) costs zero probes. Fallback verdicts are
#: memoized too, so a group that failed validation is not re-probed on
#: every chunk. Honors ``fastpath.disabled()`` like every other memo.
_COMPILED_GROUPS = fastpath.Memo("batch.compiled_groups", max_entries=64)


def counters() -> dict[str, float]:
    """A snapshot of the backend counters (benchmarks, tests)."""
    return dict(_counters)


def reset_counters() -> None:
    """Zero the backend counters (cold-start state for benchmarks)."""
    for name in _COUNTER_NAMES:
        _counters[name] = 0.0


def _obs_collect() -> dict[str, float]:
    return {f"batch.{name}": value for name, value in _counters.items()}


_obs_metrics.register_collector("batch.backend", _obs_collect)


def resolve_backend(backend: str | None) -> str:
    """Normalize a backend request to ``"scalar"`` or ``"numpy"``.

    ``None`` means the caller did not opt in: the exact scalar path.
    ``"auto"`` picks numpy when available. An explicit ``"numpy"`` on an
    installation without the extra degrades to scalar (counted in
    ``batch.numpy_unavailable``) rather than failing — results are
    identical, only slower.

    Raises:
        ValueError: On an unknown backend name.
    """
    if backend is None or backend == "scalar":
        return "scalar"
    if backend == "auto":
        return "numpy" if have_numpy() else "scalar"
    if backend == "numpy":
        if have_numpy():
            return "numpy"
        _counters["numpy_unavailable"] += 1
        return "scalar"
    raise ValueError(
        f"unknown backend {backend!r} "
        f"(choices: auto, {', '.join(BACKENDS)})"
    )


def structure_key(config: SystemConfig) -> str:
    """Content hash of the config minus the batch-evaluable axes."""
    payload = system_config_to_dict(config)
    for axis in GROUP_AXES:
        payload.pop(axis, None)
    return fastpath.stable_hash(payload)


def _worth_compiling(n_points: int, n_temperatures: int) -> bool:
    return (
        n_points >= _MIN_GROUP_POINTS
        and n_points >= _MIN_POINTS_PER_TEMPERATURE * n_temperatures
    )


def evaluate_batch(
    items: Sequence[tuple[str, SystemConfig]],
    group_keys: Sequence[str] | None = None,
) -> tuple[dict[str, EvalRecord], list[tuple[str, SystemConfig]]]:
    """Vectorize what can be vectorized; return the rest as leftovers.

    Args:
        items: Pending ``(cache key, config)`` points (already deduped
            and cache-missed by the engine).
        group_keys: Optional precomputed :func:`structure_key` per item —
            the sweep runner derives them from its axis values for free;
            generic callers let this function hash each config.

    Returns:
        ``(records, leftovers)``: records keyed by cache key for every
        vectorized point (``backend="numpy"``, ``from_cache=False``),
        and the items the scalar path must still evaluate.
    """
    np = get_numpy()
    if np is None or not items:
        return {}, list(items)
    if group_keys is not None and len(group_keys) != len(items):
        raise ValueError(
            f"got {len(group_keys)} group keys for {len(items)} items"
        )

    groups: dict[str, list[int]] = {}
    for i, (_, config) in enumerate(items):
        gkey = (
            group_keys[i] if group_keys is not None
            else structure_key(config)
        )
        groups.setdefault(gkey, []).append(i)

    records: dict[str, EvalRecord] = {}
    leftovers: list[tuple[str, SystemConfig]] = []
    with obs.span(
        "batch.evaluate", category="batch",
        points=len(items), groups=len(groups),
    ):
        for indices in groups.values():
            group_items = [items[i] for i in indices]
            points = [
                (config.clock_hz, config.temperature_k)
                for _, config in group_items
            ]
            temperatures = sorted({t for _, t in points})
            if not _worth_compiling(len(points), len(temperatures)):
                _counters["points_fallback"] += len(points)
                leftovers.extend(group_items)
                continue
            frequencies = sorted({f for f, _ in points})
            representative = group_items[0][1]
            memo_key = (
                structure_key(representative),
                tuple(frequencies),
                tuple(temperatures),
            )

            def _compile() -> object:
                try:
                    compiled = compile_group(
                        representative, frequencies, temperatures,
                    )
                except BatchFallback as fallback:
                    return fallback
                _counters["groups_compiled"] += 1
                _counters["compile_probes"] += compiled.n_probes
                return compiled

            compiled = _COMPILED_GROUPS.get_or_compute(memo_key, _compile)
            if isinstance(compiled, BatchFallback):
                _counters["groups_fallback"] += 1
                _counters["points_fallback"] += len(points)
                leftovers.extend(group_items)
                continue
            _counters["points_vectorized"] += len(points)
            arrays = compiled.evaluate(points, np)
            for j, (key, _) in enumerate(group_items):
                records[key] = EvalRecord(
                    name=compiled.name,
                    key=key,
                    area_mm2=float(arrays["area_mm2"][j]),
                    tdp_w=float(arrays["tdp_w"][j]),
                    peak_dynamic_w=float(arrays["peak_dynamic_w"][j]),
                    leakage_w=float(arrays["leakage_w"][j]),
                    core_area_mm2=float(arrays["core_area_mm2"][j]),
                    core_peak_dynamic_w=float(
                        arrays["core_peak_dynamic_w"][j]
                    ),
                    core_leakage_w=float(arrays["core_leakage_w"][j]),
                    backend="numpy",
                )
    return records, leftovers
