PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test verify bench

test:
	$(PYTHON) -m pytest -x -q

verify: test
	$(PYTHON) benchmarks/bench_engine.py --smoke
	$(PYTHON) benchmarks/bench_single_eval.py --smoke

bench:
	$(PYTHON) benchmarks/bench_engine.py
	$(PYTHON) benchmarks/bench_single_eval.py
