PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test verify bench

test:
	$(PYTHON) -m pytest -x -q

verify: test
	$(PYTHON) benchmarks/bench_engine.py --smoke

bench:
	$(PYTHON) benchmarks/bench_engine.py
