PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test verify bench lint goldens surrogate-model

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.cli lint --all --jobs 4 src
	$(PYTHON) -m repro.cli lint --concurrency --keysound tests
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[lint]')"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[lint]')"; \
	fi

verify: lint test
	$(PYTHON) benchmarks/bench_engine.py --smoke
	$(PYTHON) benchmarks/bench_single_eval.py --smoke

bench:
	$(PYTHON) benchmarks/bench_engine.py
	$(PYTHON) benchmarks/bench_single_eval.py

goldens:
	$(PYTHON) -m repro.cli validate --update-goldens

# Regenerate the packaged surrogate artifact and audit its declared
# bounds. Required whenever analytic formulas, presets, or the feature
# encoding change (see CONTRIBUTING.md).
surrogate-model:
	$(PYTHON) -m repro.cli surrogate train \
		--output src/repro/surrogate/model_default.json --jobs 4
	$(PYTHON) -m repro.cli surrogate check --jobs 4
