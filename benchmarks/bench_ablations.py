"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation toggles one modeling/architecture decision and reports its
effect, so the contribution of every mechanism is measurable:

* ECC storage in shared caches (area/energy tax).
* Sequential vs parallel (NORMAL) cache access (energy vs latency).
* HP vs LSTP devices for a whole chip (leakage vs frequency headroom).
* Multithreading as stall-hiding (the Niagara bet).

Run with::

    pytest benchmarks/bench_ablations.py --benchmark-only -s
"""

import dataclasses

from repro.array import Cache, CacheAccessMode, CacheSpec
from repro.chip import Processor
from repro.config import presets
from repro.config.schema import CoreConfig
from repro.perf import SPLASH2_PROFILES, estimate_cpi
from repro.tech import DeviceType, Technology
from repro.units import MB

TECH = Technology(node_nm=65, temperature_k=360)


def test_ablation_ecc(benchmark):
    """ECC check bits: the area/energy tax of SECDED in a 4 MB cache."""
    def build_both():
        base = CacheSpec(name="l2", capacity_bytes=4 * MB, block_bytes=64,
                         associativity=16,
                         access_mode=CacheAccessMode.SEQUENTIAL)
        with_ecc = dataclasses.replace(base, ecc=True)
        return Cache.build(TECH, base), Cache.build(TECH, with_ecc)

    plain, ecc = benchmark.pedantic(build_both, rounds=1, iterations=1)
    area_tax = ecc.area / plain.area - 1
    energy_tax = ecc.read_hit_energy / plain.read_hit_energy - 1
    print(f"\nECC ablation (4MB L2): area +{area_tax:.1%}, "
          f"read energy +{energy_tax:.1%}")
    assert 0.05 < area_tax < 0.25
    assert energy_tax > 0


def test_ablation_access_mode(benchmark):
    """Sequential vs parallel tag/data access on a 1 MB 8-way cache."""
    def build_modes():
        out = {}
        for mode in CacheAccessMode:
            spec = CacheSpec(name="l2", capacity_bytes=1 * MB,
                             block_bytes=64, associativity=8,
                             access_mode=mode)
            out[mode] = Cache.build(TECH, spec)
        return out

    caches = benchmark.pedantic(build_modes, rounds=1, iterations=1)
    print("\nAccess-mode ablation (1MB 8-way)")
    for mode, cache in caches.items():
        print(f"  {mode.value:<10} hit {cache.access_time * 1e9:5.2f} ns, "
              f"{cache.read_hit_energy * 1e12:7.1f} pJ")
    seq = caches[CacheAccessMode.SEQUENTIAL]
    normal = caches[CacheAccessMode.NORMAL]
    fast = caches[CacheAccessMode.FAST]
    assert seq.read_hit_energy < normal.read_hit_energy
    assert fast.access_time <= normal.access_time


def test_ablation_device_flavor(benchmark):
    """HP vs LSTP devices for the whole Niagara2 chip."""
    def build_both():
        hp = Processor(presets.niagara2())
        lstp_config = dataclasses.replace(
            presets.niagara2(), device_type=DeviceType.LSTP,
        )
        return hp, Processor(lstp_config)

    hp, lstp = benchmark.pedantic(build_both, rounds=1, iterations=1)
    print(f"\nDevice-flavor ablation (Niagara2 @65nm):")
    print(f"  HP   leakage {hp.leakage_power:6.1f} W, "
          f"TDP {hp.tdp:6.1f} W")
    print(f"  LSTP leakage {lstp.leakage_power:6.1f} W, "
          f"TDP {lstp.tdp:6.1f} W")
    assert lstp.leakage_power < hp.leakage_power / 10


def test_ablation_link_signaling(benchmark):
    """Low-swing vs full-swing NoC links: energy vs latency."""
    from repro.config.schema import LinkSignaling
    from repro.noc import Link

    def build_both():
        full = Link(TECH, flit_bits=128, length=2e-3)
        low = Link(TECH, flit_bits=128, length=2e-3,
                   signaling=LinkSignaling.LOW_SWING)
        return full, low

    full, low = benchmark.pedantic(build_both, rounds=1, iterations=1)
    print("\nLink-signaling ablation (128b, 2mm @65nm):")
    print(f"  full swing: {full.energy_per_flit * 1e12:6.2f} pJ/flit, "
          f"{full.delay * 1e12:6.0f} ps")
    print(f"  low swing : {low.energy_per_flit * 1e12:6.2f} pJ/flit, "
          f"{low.delay * 1e12:6.0f} ps")
    assert low.energy_per_flit < full.energy_per_flit / 2
    assert low.delay > full.delay


def test_ablation_edram(benchmark):
    """eDRAM vs SRAM for a 1 MB array: density vs refresh/restore."""
    from repro.array import ArraySpec, CellType, build_array

    def build_both():
        spec = dict(name="slice", entries=16384, width_bits=512)
        sram = build_array(TECH, ArraySpec(**spec,
                                           cell_type=CellType.SRAM))
        edram = build_array(TECH, ArraySpec(**spec,
                                            cell_type=CellType.EDRAM))
        return sram, edram

    sram, edram = benchmark.pedantic(build_both, rounds=1, iterations=1)
    print(f"\neDRAM ablation (1MB slice @{TECH.node_nm}nm):")
    print(f"  SRAM : {sram.area * 1e6:6.3f} mm^2, "
          f"leak {sram.leakage_power * 1e3:7.1f} mW")
    print(f"  eDRAM: {edram.area * 1e6:6.3f} mm^2, "
          f"leak {edram.leakage_power * 1e3:7.1f} mW "
          f"(refresh {edram.refresh_power * 1e3:5.2f} mW)")
    assert edram.area < sram.area / 2
    assert edram.refresh_power > 0
    assert edram.leakage_power < sram.leakage_power


def test_ablation_noc_topology(benchmark):
    """Mesh vs torus vs concentrated mesh at 64 endpoints."""
    from repro.activity import NocActivity
    from repro.config.schema import NocConfig, NocTopology
    from repro.noc import NetworkOnChip

    def build_all():
        out = {}
        for topo in (NocTopology.MESH_2D, NocTopology.TORUS_2D,
                     NocTopology.CMESH_2D):
            out[topo] = NetworkOnChip(
                tech=TECH, config=NocConfig(topology=topo),
                n_endpoints=64, endpoint_pitch=2e-3,
            )
        return out

    nocs = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print("\nNoC-topology ablation (64 endpoints, 2mm pitch @65nm)")
    act = NocActivity(flits_per_cycle_per_router=0.3)
    for topo, noc in nocs.items():
        result = noc.result(2e9, act)
        print(f"  {topo.value:<10} routers={noc.n_routers:>3} "
              f"hops={noc.average_hops:4.1f} "
              f"P={result.total_runtime_dynamic_power:6.2f} W "
              f"leak={result.total_leakage_power:5.2f} W")
    from repro.config.schema import NocTopology as T

    assert nocs[T.TORUS_2D].average_hops < nocs[T.MESH_2D].average_hops
    assert nocs[T.CMESH_2D].n_routers < nocs[T.MESH_2D].n_routers


def test_ablation_power_gating(benchmark):
    """Sleep transistors: idle leakage savings vs area overhead."""
    from repro.activity import CoreActivity
    from repro.core import Core

    def build_both():
        idle = CoreActivity(ipc=0.0, duty_cycle=0.0)
        gated_cfg = CoreConfig(name="gated", power_gating=True)
        plain_cfg = CoreConfig(name="plain")
        gated = Core(TECH, gated_cfg).result(2e9, idle)
        plain = Core(TECH, plain_cfg).result(2e9, idle)
        return gated, plain

    gated, plain = benchmark.pedantic(build_both, rounds=1, iterations=1)
    leak_saving = 1 - (gated.total_runtime_leakage_power
                       / plain.total_runtime_leakage_power)
    area_cost = gated.total_area / plain.total_area - 1
    print(f"\nPower-gating ablation (idle core @65nm): "
          f"-{leak_saving:.0%} idle leakage for +{area_cost:.1%} area")
    assert leak_saving > 0.8
    assert 0.0 < area_cost < 0.10


def test_ablation_multithreading(benchmark):
    """Hardware threads hide memory stalls (the Niagara design bet)."""
    workload = SPLASH2_PROFILES["ocean"]

    def sweep_threads():
        results = {}
        for threads in (1, 2, 4, 8):
            core = CoreConfig(name=f"t{threads}",
                              hardware_threads=threads)
            results[threads] = estimate_cpi(
                core, workload,
                l2_hit_latency_cycles=20.0,
                l2_miss_rate=0.4,
                memory_latency_cycles=200.0,
            )
        return results

    results = benchmark.pedantic(sweep_threads, rounds=1, iterations=1)
    print("\nMultithreading ablation (ocean, slow memory)")
    for threads, cpi in results.items():
        print(f"  {threads} threads: CPI {cpi.total:5.2f} "
              f"(stall {cpi.l1_miss_stall + cpi.l2_miss_stall:5.2f})")
    cpis = [results[t].total for t in (1, 2, 4, 8)]
    assert cpis == sorted(cpis, reverse=True)
