"""Benchmark regenerating the pipeline-depth extension figure (F-P).

Run with::

    pytest benchmarks/bench_pipeline_depth.py --benchmark-only -s
"""

from repro.experiments.pipeline_depth import (
    format_pipeline_table,
    run_pipeline_depth_study,
)


def test_pipeline_depth_figure(benchmark):
    """F-P: BIPS and BIPS^3/W vs pipeline depth."""
    points = benchmark.pedantic(
        run_pipeline_depth_study, rounds=1, iterations=1)
    print("\nPipeline-depth study (45nm, 2-wide core)")
    print(format_pipeline_table(points))

    best_perf = max(points, key=lambda p: p.bips)
    best_eff = max(points, key=lambda p: p.bips3_per_watt)
    print(f"performance-optimal depth: {best_perf.stages}, "
          f"efficiency-optimal depth: {best_eff.stages}")

    depths = [p.stages for p in points]
    # The published shape: both optima are interior, and the
    # power-efficiency optimum is shallower than the performance one.
    assert min(depths) < best_perf.stages
    assert min(depths) < best_eff.stages <= best_perf.stages
    # Clock rises monotonically with depth; IPC falls monotonically.
    clocks = [p.clock_hz for p in points]
    ipcs = [p.ipc for p in points]
    assert clocks == sorted(clocks)
    assert ipcs == sorted(ipcs, reverse=True)
