"""Benchmark regenerating the internal-optimizer figure (F-O).

Shows how the array organization search trades energy and area for delay
as the target access time tightens — the mechanism behind McPAT's
"specify architecture, get circuits" claim. Run with::

    pytest benchmarks/bench_optimizer.py --benchmark-only -s
"""

from repro.array import ArraySpec
from repro.array.organization import search_organizations
from repro.tech import Technology

TECH = Technology(node_nm=45, temperature_k=360)


def test_organization_search_vs_target(benchmark):
    """F-O: chosen organization vs access-time target for a 1 MB array."""
    targets_ns = (4.0, 2.0, 1.0, 0.7, 0.5)

    def sweep():
        results = []
        for target in targets_ns:
            spec = ArraySpec(
                name="l2slice", entries=16384, width_bits=512,
                target_access_time=target * 1e-9,
            )
            best = search_organizations(TECH, spec)[0]
            results.append((target, best))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nOrganization search vs timing target (1 MB array @45nm)")
    print(f"{'target ns':>9} {'org':>24} {'acc ns':>7} {'pJ/read':>8} "
          f"{'mm^2':>7} {'met':>4}")
    for target, bank in results:
        met = bank.access_time <= target * 1e-9
        print(f"{target:>9.1f} {str(bank.organization):>24} "
              f"{bank.access_time * 1e9:>7.2f} "
              f"{bank.read_energy * 1e12:>8.1f} "
              f"{bank.area * 1e6:>7.3f} {'y' if met else 'n':>4}")

    # Shape: tightening the target never *lowers* the chosen read energy
    # by much — faster organizations cost energy/area.
    relaxed = results[0][1]
    tight = results[-1][1]
    assert tight.access_time <= relaxed.access_time
    # And the relaxed point should meet its generous target.
    assert relaxed.access_time <= targets_ns[0] * 1e-9


def test_search_throughput(benchmark):
    """How fast the internal optimizer explores one array's space."""
    spec = ArraySpec(name="cache", entries=8192, width_bits=512)

    def search():
        return search_organizations(TECH, spec)

    banks = benchmark(search)
    print(f"\nexplored {len(banks)} feasible organizations")
    assert len(banks) > 5
