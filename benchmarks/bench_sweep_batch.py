#!/usr/bin/env python3
"""Benchmark the vectorized sweep backend against the scalar loop.

Runs the same Vdd x frequency grid over the niagara1 validation preset
through ``run_sweep`` twice — once per backend — and reports per-point
p50 time, points/s, and the numpy-vs-scalar speedup that
``bench_trend.py`` gates. Every numpy result is compared against its
scalar twin on all record metrics; the run fails outright if the worst
relative difference exceeds ``PARITY_REL_TOL``.

Timed runs use ``cache=None`` (every point is really evaluated) after a
warm-up pass that fills the process-wide fast-path memos and the
compiled-group memo — matching the steady state of a long exploration,
which is what the batch backend exists for.

Run::

    python benchmarks/bench_sweep_batch.py            # 1000-point grid
    python benchmarks/bench_sweep_batch.py --smoke    # CI-sized run
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

from repro import batch
from repro.config import presets
from repro.engine import SweepSpec, run_sweep

#: Numpy-vs-scalar agreement bound (the batch backend's contract).
PARITY_REL_TOL = 1e-9

#: Required warm numpy-vs-scalar speedup. The acceptance bar is 50x on
#: the full 1000-point grid; smoke mode shrinks the grid (less compile
#: amortization) and runs on noisy shared CI runners.
SPEEDUP_FLOOR = 50.0
SPEEDUP_FLOOR_SMOKE = 10.0

#: Record fields compared between the backends.
METRIC_FIELDS = (
    "area_mm2",
    "tdp_w",
    "peak_dynamic_w",
    "leakage_w",
    "core_area_mm2",
    "core_peak_dynamic_w",
    "core_leakage_w",
)


def build_spec(smoke: bool) -> SweepSpec:
    """The benchmark grid: Vdd (structure axis) x frequency (vector axis)."""
    base = presets.VALIDATION_PRESETS["niagara1"]()
    n_vdd, n_freq = (2, 50) if smoke else (5, 200)
    vdds = [round(1.0 + 0.05 * i, 3) for i in range(n_vdd)]
    f0 = base.clock_hz
    freqs = [f0 * (1.0 + 0.001 * i) for i in range(n_freq)]
    return SweepSpec.from_axes(base, {"vdd_v": vdds, "clock_hz": freqs})


def time_backend(
    spec: SweepSpec, backend: str, reps: int,
) -> tuple[list, dict]:
    """Median-of-``reps`` wall time for one backend, plus its results."""
    results = run_sweep(spec, cache=None, backend=backend)  # warm-up
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        results = run_sweep(spec, cache=None, backend=backend)
        times.append(time.perf_counter() - start)
    p50 = statistics.median(times)
    return results, {
        "p50_s": p50,
        "p50_us_per_point": p50 / spec.n_points * 1e6,
        "points_per_s": spec.n_points / p50,
        "reps": reps,
    }


def parity_max_rel(scalar_results: list, numpy_results: list) -> float:
    """Worst relative metric difference between the two backends."""
    worst = 0.0
    for a, b in zip(scalar_results, numpy_results):
        for name in METRIC_FIELDS:
            x = getattr(a.record, name)
            y = getattr(b.record, name)
            scale = max(abs(x), abs(y), 1e-30)
            worst = max(worst, abs(x - y) / scale)
    return worst


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the vectorized sweep backend",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small grid + relaxed floor for CI")
    parser.add_argument("--output", default=None,
                        metavar="PATH",
                        help="payload destination (default "
                             "BENCH_sweep_batch.json; smoke runs write "
                             "BENCH_sweep_batch.smoke.json so they never "
                             "clobber a committed full-run payload)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = ("BENCH_sweep_batch.smoke.json" if args.smoke
                       else "BENCH_sweep_batch.json")

    if not batch.have_numpy():
        raise SystemExit(
            "numpy is not installed; the batch benchmark needs the "
            "[fast] extra (pip install .[fast])"
        )

    spec = build_spec(args.smoke)
    floor = SPEEDUP_FLOOR_SMOKE if args.smoke else SPEEDUP_FLOOR
    scalar_reps = 1 if args.smoke else 2
    numpy_reps = 3 if args.smoke else 5

    print(f"grid: {spec.n_points} points "
          f"({' x '.join(str(len(a.values)) for a in spec.axes)}; "
          f"axes: {', '.join(a.name for a in spec.axes)})")

    scalar_results, scalar_stats = time_backend(spec, "scalar", scalar_reps)
    print(f"scalar: {scalar_stats['p50_us_per_point']:8.1f} us/pt  "
          f"{scalar_stats['points_per_s']:8.0f} points/s")

    batch.reset_counters()
    numpy_results, numpy_stats = time_backend(spec, "numpy", numpy_reps)
    counters = batch.counters()
    print(f"numpy:  {numpy_stats['p50_us_per_point']:8.1f} us/pt  "
          f"{numpy_stats['points_per_s']:8.0f} points/s")

    worst_rel = parity_max_rel(scalar_results, numpy_results)
    print(f"parity: worst relative difference {worst_rel:.3e} "
          f"(tolerance {PARITY_REL_TOL:.0e})")
    if worst_rel > PARITY_REL_TOL:
        print("FAIL: backends disagree beyond tolerance", file=sys.stderr)
        return 1
    if counters["points_vectorized"] < spec.n_points:
        print(
            f"FAIL: only {counters['points_vectorized']:.0f} of "
            f"{spec.n_points} points vectorized "
            f"(fallbacks: {counters['points_fallback']:.0f})",
            file=sys.stderr,
        )
        return 1

    speedup = (
        scalar_stats["p50_us_per_point"]
        / numpy_stats["p50_us_per_point"]
    )
    print(f"speedup: {speedup:.1f}x (floor {floor:.0f}x)")

    payload = {
        "benchmark": "sweep_batch",
        "smoke": bool(args.smoke),
        "n_points": spec.n_points,
        "axes": {a.name: len(a.values) for a in spec.axes},
        "preset": "niagara1",
        "speedup": speedup,
        "speedup_floor": floor,
        "parity_max_rel": worst_rel,
        "parity_rel_tol": PARITY_REL_TOL,
        "backends": {"scalar": scalar_stats, "numpy": numpy_stats},
        "batch_counters": counters,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")

    if speedup < floor:
        print(f"FAIL: speedup {speedup:.1f}x is below the "
              f"{floor:.0f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
