"""Benchmark regenerating the technology-scaling figure (F-S).

Run with::

    pytest benchmarks/bench_tech_scaling.py --benchmark-only -s
"""

from repro.experiments.tech_scaling import (
    format_scaling_table,
    run_tech_scaling,
)
from repro.tech import DeviceType


def test_tech_scaling_figure(benchmark):
    """F-S: fixed core across 90->22 nm, HP vs LSTP."""
    rows = benchmark.pedantic(run_tech_scaling, rounds=1, iterations=1)
    print("\nTechnology scaling figure data")
    print(format_scaling_table(rows))

    hp = sorted((r for r in rows if r.device_type is DeviceType.HP),
                key=lambda r: -r.node_nm)
    # Shape assertions: the figure's qualitative claims.
    areas = [r.area_mm2 for r in hp]
    assert areas == sorted(areas, reverse=True)
    fractions = [r.leakage_fraction for r in hp]
    assert fractions == sorted(fractions)
    for row in rows:
        if row.device_type is DeviceType.LSTP:
            assert row.leakage_fraction < 0.05
