#!/usr/bin/env python3
"""Load-test the evaluation service: latency, saturation, cache reuse.

Starts a real :class:`repro.serve.BackgroundServer` in this process and
drives it with threaded :class:`repro.serve.client.ServeClient` workers,
in three phases:

1. **cold** — every distinct config evaluated once through the model
   (fills the shared cache; times the end-to-end cold path),
2. **ramp** — warm requests at increasing client counts; the highest
   sustained rate across steps is the saturation throughput,
3. **verify** — a preset evaluated cold then again, asserting the warm
   repeat is served ``from_cache`` and the ``/metrics`` hit counters
   moved.

Results land in ``BENCH_serve.json``: p50/p99 latency per ramp step,
requests/s at saturation, and the shared-cache hit rate. ``--smoke`` is
the CI-sized run (fewer configs, smaller ramp, same assertions).

Run::

    python benchmarks/bench_serve.py            # full ramp
    python benchmarks/bench_serve.py --smoke    # quick CI-sized run
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

from repro.config.loader import system_config_to_dict
from repro.config.schema import (
    CacheGeometry,
    CoreConfig,
    MemoryControllerConfig,
    NocConfig,
    NocTopology,
    SystemConfig,
)
from repro.serve import BackgroundServer, ServeConfig, ServeError

#: Minimum shared-cache hit rate after the warm ramp. Nearly every ramp
#: request repeats a config the cold phase filled in, so a healthy
#: server sits close to 1.0; well under this means the cache sharing the
#: serve tier exists for is broken.
HIT_RATE_FLOOR = 0.5


def _tile_config(i: int) -> dict:
    """The ``i``-th distinct small chip of the benchmark working set."""
    config = SystemConfig(
        name=f"bench-serve-{i}",
        node_nm=(90, 65, 45, 32)[i % 4],
        clock_hz=1.0e9 + 0.5e9 * (i // 4),
        n_cores=1 + i % 2,
        core=CoreConfig(
            name="bench-core",
            icache=CacheGeometry(capacity_bytes=8 * 1024),
            dcache=CacheGeometry(capacity_bytes=8 * 1024),
            branch_predictor=None,
        ),
        l2=None,
        noc=NocConfig(topology=NocTopology.NONE),
        memory_controller=MemoryControllerConfig(channels=1),
    )
    return system_config_to_dict(config)


def _percentile(sorted_values: list[float], q: float) -> float:
    """The ``q``-quantile of an ascending list (nearest-rank)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def _ramp_step(
    server: BackgroundServer,
    configs: list[dict],
    n_clients: int,
    requests_per_client: int,
) -> dict:
    """One load step: ``n_clients`` threads firing warm requests."""
    latencies_s: list[float] = []
    errors: list[int] = []
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        client = server.client()
        for i in range(requests_per_client):
            payload = configs[(worker_id + i) % len(configs)]
            start_s = time.perf_counter()
            try:
                client.evaluate(config=payload, report=False)
            except ServeError as exc:
                with lock:
                    errors.append(exc.status)
                continue
            elapsed_s = time.perf_counter() - start_s
            with lock:
                latencies_s.append(elapsed_s)

    threads = [
        threading.Thread(target=worker, args=(worker_id,))
        for worker_id in range(n_clients)
    ]
    start_s = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start_s

    latencies_s.sort()
    completed = len(latencies_s)
    return {
        "clients": n_clients,
        "requests": n_clients * requests_per_client,
        "completed": completed,
        "errors": len(errors),
        "wall_s": wall_s,
        "reqs_per_s": completed / wall_s if wall_s > 0 else 0.0,
        "latency_p50_s": _percentile(latencies_s, 0.50),
        "latency_p99_s": _percentile(latencies_s, 0.99),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="evaluation-service load benchmark",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: small working set and ramp")
    parser.add_argument("--configs", type=int, default=8,
                        help="distinct configs in the working set "
                             "(default 8)")
    parser.add_argument("--requests", type=int, default=100,
                        help="warm requests per client per ramp step "
                             "(default 100)")
    parser.add_argument("--output", default=None,
                        metavar="PATH",
                        help="result JSON path (default BENCH_serve.json; "
                             "smoke runs write BENCH_serve.smoke.json so "
                             "they never clobber a committed full-run "
                             "payload)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = ("BENCH_serve.smoke.json" if args.smoke
                       else "BENCH_serve.json")

    n_configs = 4 if args.smoke else args.configs
    per_client = 25 if args.smoke else args.requests
    ramp = (1, 2) if args.smoke else (1, 2, 4, 8)
    configs = [_tile_config(i) for i in range(n_configs)]
    failed = False

    serve_config = ServeConfig(
        port=0, concurrency=4, queue_limit=256, timeout_s=120.0,
    )
    with BackgroundServer(serve_config) as server:
        client = server.client()

        # Phase 1: cold fills — each distinct config modeled once.
        cold_latencies_s: list[float] = []
        for payload in configs:
            start_s = time.perf_counter()
            response = client.evaluate(config=payload, report=False)
            cold_latencies_s.append(time.perf_counter() - start_s)
            if response["from_cache"]:
                print("FAIL: cold request reported from_cache",
                      file=sys.stderr)
                failed = True
        cold_latencies_s.sort()
        print(f"cold fill      : {n_configs} configs, "
              f"p50={_percentile(cold_latencies_s, 0.5):.3f}s")

        # Phase 2: warm ramp to saturation.
        steps = []
        for n_clients in ramp:
            step = _ramp_step(server, configs, n_clients, per_client)
            steps.append(step)
            print(f"ramp {n_clients:2d} client{'s' if n_clients > 1 else ' '}"
                  f" : {step['reqs_per_s']:7.0f} req/s  "
                  f"p50={step['latency_p50_s'] * 1e3:6.2f}ms  "
                  f"p99={step['latency_p99_s'] * 1e3:6.2f}ms  "
                  f"errors={step['errors']}")
        saturation = max(steps, key=lambda s: s["reqs_per_s"])

        # Phase 3: preset cold/warm through the same shared cache.
        start_s = time.perf_counter()
        first = client.evaluate(preset="niagara1")
        preset_cold_s = time.perf_counter() - start_s
        start_s = time.perf_counter()
        second = client.evaluate(preset="niagara1")
        preset_warm_s = time.perf_counter() - start_s
        if first["from_cache"] or not second["from_cache"]:
            print("FAIL: preset repeat was not served from the shared "
                  "cache", file=sys.stderr)
            failed = True
        if second["report_text"] != first["report_text"]:
            print("FAIL: warm preset report differs from cold",
                  file=sys.stderr)
            failed = True
        print(f"preset niagara1: cold={preset_cold_s:.2f}s "
              f"warm={preset_warm_s * 1e3:.1f}ms "
              f"from_cache={second['from_cache']}")

        counters = client.metrics()["counters"]

    hits = counters.get("engine.cache.hits", 0.0)
    misses = counters.get("engine.cache.misses", 0.0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    print(f"shared cache   : {hits:.0f} hits / {misses:.0f} misses "
          f"(hit rate {hit_rate:.1%})")
    if hit_rate < HIT_RATE_FLOOR:
        print(f"FAIL: cache hit rate {hit_rate:.1%} below "
              f"{HIT_RATE_FLOOR:.0%} floor", file=sys.stderr)
        failed = True

    payload = {
        "benchmark": "serve",
        "smoke": args.smoke,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "working_set_configs": n_configs,
        "cold_fill": {
            "latency_p50_s": _percentile(cold_latencies_s, 0.50),
            "latency_p99_s": _percentile(cold_latencies_s, 0.99),
        },
        "ramp": steps,
        "saturation": {
            "clients": saturation["clients"],
            "reqs_per_s": saturation["reqs_per_s"],
            "latency_p50_s": saturation["latency_p50_s"],
            "latency_p99_s": saturation["latency_p99_s"],
        },
        "preset_roundtrip": {
            "preset": "niagara1",
            "cold_s": preset_cold_s,
            "warm_s": preset_warm_s,
            "warm_from_cache": bool(second["from_cache"]),
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hit_rate,
        },
        "serve_counters": {
            name: value for name, value in sorted(counters.items())
            if name.startswith("serve.")
        },
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failed:
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
