#!/usr/bin/env python3
"""Benchmark + calibration gate for the learned surrogate tier.

Trains a fresh model from the exact engine (no cached state), then for
every validation preset:

1. **calibration** — re-verifies the model's *declared* relative error
   bound on a fresh held-out grid, strictly interior to the training
   box and disjoint from every training value. Both the 95th-percentile
   and the worst observed error must stay within the declared bound.
2. **latency** — times ``SurrogateModel.predict`` on an in-domain
   operating point; the p50 must beat the O(µs) budget.
3. **speedup** — the exact analytic evaluation of the same point over
   the surrogate p50 (this is the number the tier exists for).
4. **fallback policy** — drives the runtime tier over in-domain and
   out-of-domain points and records the hit/fallback counters, so the
   payload documents the policy actually enforced.

The worst per-preset speedup lands top-level as ``speedup`` next to
``speedup_floor``, the shape ``benchmarks/bench_trend.py`` gates on.

Run::

    python benchmarks/bench_surrogate.py            # all four presets
    python benchmarks/bench_surrogate.py --smoke    # CI-sized run
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro import surrogate
from repro.config import presets
from repro.engine.record import evaluate_config
from repro.surrogate import tier as tier_mod

#: p50 predict latency budget per point, microseconds.
LATENCY_BUDGET_US = 50.0

#: Required exact-vs-surrogate per-point speedup. Smoke mode relaxes it
#: for noisy shared CI runners.
SPEEDUP_FLOOR = 50.0
SPEEDUP_FLOOR_SMOKE = 20.0

#: predict() calls per latency sample and samples per preset; the p50
#: over samples absorbs scheduler noise.
_CALLS_PER_SAMPLE = 20
_SAMPLES = 50


def _heldout_point(base):
    """One in-domain operating point no training grid ever contained."""
    axes = surrogate.heldout_axes(base)
    return dataclasses.replace(
        base,
        clock_hz=axes["clock_hz"][0],
        temperature_k=axes["temperature_k"][0],
        vdd_v=axes["vdd_v"][0],
    )


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def bench_latency(model, config) -> dict:
    """p50/p95 of ``model.predict`` on one in-domain config."""
    prediction = model.predict(config)
    if not prediction.in_domain:
        raise SystemExit(
            f"latency config for {config.name!r} is out of domain; "
            f"the training grid and held-out grid disagree"
        )
    samples = []
    for _ in range(_SAMPLES):
        start = time.perf_counter()
        for _ in range(_CALLS_PER_SAMPLE):
            model.predict(config)
        samples.append(
            (time.perf_counter() - start) / _CALLS_PER_SAMPLE
        )
    samples.sort()
    return {
        "p50_us": _percentile(samples, 0.50) * 1e6,
        "p95_us": _percentile(samples, 0.95) * 1e6,
        "calls": _SAMPLES * _CALLS_PER_SAMPLE,
    }


def bench_exact_point(config) -> float:
    """Best-of-3 exact evaluation time of one config, seconds."""
    best = None
    for _ in range(3):
        start = time.perf_counter()
        evaluate_config(config)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def bench_fallback_policy(model, base) -> dict:
    """Drive the runtime tier; return its counter snapshot."""
    tier_mod.reset_counters()
    tier = surrogate.SurrogateTier(model)
    in_domain = _heldout_point(base)
    out_of_domain = dataclasses.replace(
        base, clock_hz=base.clock_hz * 4.0,
    )
    for _ in range(8):
        if tier.try_predict(in_domain) is None:
            raise SystemExit(
                f"{base.name!r}: in-domain point was refused by the tier"
            )
    for _ in range(2):
        if tier.try_predict(out_of_domain) is not None:
            raise SystemExit(
                f"{base.name!r}: out-of-domain point was answered"
            )
    # A tolerance tighter than the declared bound must also fall back.
    if tier.try_predict(in_domain, rel_tol=1e-12) is not None:
        raise SystemExit(
            f"{base.name!r}: tier ignored the caller's rel_tol"
        )
    counters = tier_mod.counters()
    tier_mod.reset_counters()
    return counters


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="surrogate-tier latency + calibration benchmark",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: one preset, relaxed floor")
    parser.add_argument("--output", default=None,
                        metavar="PATH",
                        help="result JSON path (default "
                             "BENCH_surrogate.json; smoke runs write "
                             "BENCH_surrogate.smoke.json so they never "
                             "clobber a committed full-run payload)")
    parser.add_argument("--model-output", default=None, metavar="PATH",
                        help="also save the freshly trained artifact")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = ("BENCH_surrogate.smoke.json" if args.smoke
                       else "BENCH_surrogate.json")

    names = (("niagara1",) if args.smoke
             else tuple(presets.VALIDATION_PRESETS))
    floor = SPEEDUP_FLOOR_SMOKE if args.smoke else SPEEDUP_FLOOR
    bases = [presets.VALIDATION_PRESETS[name]() for name in names]

    start = time.perf_counter()
    model = surrogate.train(bases, cache=None)
    train_s = time.perf_counter() - start
    print(f"trained {len(model.segments)} segment(s) in {train_s:.1f}s")
    if args.model_output is not None:
        model.save(args.model_output)
        print(f"saved artifact to {args.model_output}")

    results = []
    failed = False
    for name, base in zip(names, bases):
        check = surrogate.check_calibration(model, base)
        latency = bench_latency(model, _heldout_point(base))
        exact_s = bench_exact_point(_heldout_point(base))
        speedup = exact_s / (latency["p50_us"] * 1e-6)
        policy = bench_fallback_policy(model, base)
        entry = {
            "preset": name,
            "calibration": check.to_dict(),
            "latency": latency,
            "exact_point_s": exact_s,
            "speedup": speedup,
            "fallback_policy": policy,
        }
        results.append(entry)
        print(f"{name:<12} bound={check.bound:7.4f} "
              f"q95={check.q95_rel_err:.2e} max={check.worst_rel_err:.2e} "
              f"p50={latency['p50_us']:5.1f}us "
              f"exact={exact_s * 1e3:6.1f}ms speedup={speedup:8.0f}x")
        if not check.ok:
            print(f"FAIL: {name} held-out error exceeds the declared "
                  f"bound (max {check.worst_rel_err:.3e} vs "
                  f"{check.bound:.3e}) or points fell out of domain "
                  f"({check.in_domain}/{check.n_points})",
                  file=sys.stderr)
            failed = True
        if check.q95_rel_err > check.bound:
            print(f"FAIL: {name} 95p held-out error "
                  f"{check.q95_rel_err:.3e} exceeds the declared bound "
                  f"{check.bound:.3e}", file=sys.stderr)
            failed = True
        if latency["p50_us"] >= LATENCY_BUDGET_US:
            print(f"FAIL: {name} p50 predict latency "
                  f"{latency['p50_us']:.1f}us exceeds the "
                  f"{LATENCY_BUDGET_US:.0f}us budget", file=sys.stderr)
            failed = True
        if speedup < floor:
            print(f"FAIL: {name} speedup {speedup:.0f}x below "
                  f"{floor:.0f}x floor", file=sys.stderr)
            failed = True

    payload = {
        "benchmark": "surrogate",
        "smoke": args.smoke,
        "speedup": min(entry["speedup"] for entry in results),
        "speedup_floor": floor,
        "latency_budget_us": LATENCY_BUDGET_US,
        "train_s": train_s,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "presets": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failed:
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
