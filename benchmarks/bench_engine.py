#!/usr/bin/env python3
"""Benchmark the batch evaluation engine: serial vs parallel vs cached.

Builds a parameter grid of small chips with
:class:`repro.engine.SweepSpec`, then times three evaluations of the
same grid:

1. cold serial (``jobs=1``, no cache),
2. cold parallel (``--jobs N``, no cache),
3. warm cache (every point already in an :class:`EvalCache`).

Parallel results are asserted bitwise-equal to serial, and the warm run
is asserted to be far below the cold serial time. On a multi-core
machine the parallel leg shows the fan-out speedup; on a single core it
degrades to roughly serial cost (the engine never slows down more than
the fork overhead).

Run::

    python benchmarks/bench_engine.py             # 64-point grid, 4 jobs
    python benchmarks/bench_engine.py --smoke     # quick CI-sized run
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.config.schema import (
    CacheGeometry,
    CoreConfig,
    MemoryControllerConfig,
    NocConfig,
    NocTopology,
    SystemConfig,
)
from repro.engine import (
    EvalCache,
    SweepSpec,
    config_key,
    evaluate_many,
)


def _base_config() -> SystemConfig:
    """A deliberately small chip so each grid point evaluates quickly."""
    return SystemConfig(
        name="bench-tile",
        node_nm=45,
        clock_hz=1.0e9,
        n_cores=1,
        core=CoreConfig(
            name="bench-core",
            icache=CacheGeometry(capacity_bytes=8 * 1024),
            dcache=CacheGeometry(capacity_bytes=8 * 1024),
            branch_predictor=None,
        ),
        l2=None,
        noc=NocConfig(topology=NocTopology.NONE),
        memory_controller=MemoryControllerConfig(channels=1),
    )


def _grid(n_points: int) -> list[SystemConfig]:
    """A sweep grid of at least ``n_points`` distinct configurations."""
    axes = {
        "cores": (1, 2, 3, 4),
        "tech_nm": (90, 65, 45, 32),
        "clock_hz": (1.0e9, 1.5e9, 2.0e9, 2.5e9),
    }
    spec = SweepSpec.from_axes(_base_config(), axes)
    configs = [point.config for point in spec.points()]
    if len(configs) < n_points:
        raise SystemExit(
            f"grid tops out at {len(configs)} points, asked for {n_points}"
        )
    return configs[:n_points]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="serial vs parallel vs cached engine benchmark",
    )
    parser.add_argument("--points", type=int, default=64,
                        help="grid points to evaluate (default 64)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the parallel leg (default 4)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 6 points, 2 jobs")
    args = parser.parse_args(argv)

    n_points = 6 if args.smoke else args.points
    jobs = 2 if args.smoke else args.jobs
    configs = _grid(n_points)
    cpus = os.cpu_count() or 1
    print(f"{len(configs)}-point grid, parallel leg jobs={jobs} "
          f"(machine has {cpus} cpu{'s' if cpus != 1 else ''})")

    start = time.perf_counter()
    serial = evaluate_many(configs, jobs=1, cache=None)
    t_serial = time.perf_counter() - start
    print(f"cold serial    : {t_serial:8.2f} s "
          f"({t_serial / len(configs) * 1e3:6.0f} ms/point)")

    start = time.perf_counter()
    parallel = evaluate_many(configs, jobs=jobs, cache=None)
    t_parallel = time.perf_counter() - start
    print(f"cold parallel  : {t_parallel:8.2f} s "
          f"(speedup {t_serial / t_parallel:4.2f}x)")

    if parallel != serial:
        print("FAIL: parallel results differ from serial", file=sys.stderr)
        return 1

    cache = EvalCache()
    for config, record in zip(configs, serial):
        cache.put(config_key(config), record)
    start = time.perf_counter()
    warm = evaluate_many(configs, jobs=1, cache=cache)
    t_warm = time.perf_counter() - start
    print(f"warm cache     : {t_warm:8.2f} s "
          f"(speedup {t_serial / t_warm:4.0f}x, "
          f"{t_warm / t_serial:6.2%} of cold serial)")

    if [r.tdp_w for r in warm] != [r.tdp_w for r in serial]:
        print("FAIL: cached results differ from serial", file=sys.stderr)
        return 1
    if t_warm > 0.5 * t_serial:
        print("FAIL: warm cache gave no meaningful speedup",
              file=sys.stderr)
        return 1
    if cpus >= 2 * jobs and t_parallel > 0.75 * t_serial:
        # Only meaningful on machines with real parallelism headroom.
        print("FAIL: parallel run gave no speedup despite free cores",
              file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
