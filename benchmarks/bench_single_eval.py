#!/usr/bin/env python3
"""Benchmark the single-evaluation fast path: exact vs cold vs warm.

For each validation preset this times three full ``Processor.report()``
evaluations:

1. **exact** — ``repro.fastpath.disabled()``: no memos, exhaustive
   repeater grids, unpruned organization search (the pre-fast-path cost),
2. **cold** — fast path on but every memo cleared first (the cost of the
   first chip a process ever models),
3. **warm** — fast path on with memos populated (every later chip at the
   same tech node).

The exact and fast-path reports are asserted *numerically identical* —
exact equality on every field of every ``ComponentResult`` — and the
cold speedup is asserted against a floor, so the fast path can never
silently regress. Results land in ``BENCH_single_eval.json`` alongside a
per-component model-build timing breakdown.

Run::

    python benchmarks/bench_single_eval.py            # all four presets
    python benchmarks/bench_single_eval.py --smoke    # CI-sized run
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro import fastpath
from repro import obs
from repro.chip import Processor, timing_breakdown
from repro.config import presets

#: Required cold-vs-exact speedup. The acceptance bar is 5x; smoke mode
#: relaxes it for noisy shared CI runners.
SPEEDUP_FLOOR = 5.0
SPEEDUP_FLOOR_SMOKE = 3.0

#: Largest fraction of a cold evaluation that *disabled* instrumentation
#: may cost. The observability layer is off by default; its presence in
#: the hot paths has to be free to within noise.
OBS_OVERHEAD_BUDGET = 0.02


def bench_obs_overhead(name: str, t_cold: float) -> dict:
    """Bound the cost disabled instrumentation adds to one cold eval.

    Overhead can't be measured directly (the span sites are compiled
    in), so it is bounded synthetically: time one disabled span site in
    a tight loop, count how many sites one cold evaluation actually
    crosses (an enabled ``detail=True`` run records exactly one span per
    crossing), and bound the total as ``events x per-site cost``.
    """
    n = 100_000
    start = time.perf_counter()
    for _ in range(n):
        with obs.span("bench.site", detail=True, size=n):
            pass
    site_cost_s = (time.perf_counter() - start) / n

    start = time.perf_counter()
    for _ in range(n):
        obs.counter_add("bench.site")
    counter_cost_s = (time.perf_counter() - start) / n

    obs.reset()
    obs.enable(detail=True)
    fastpath.clear_all()
    Processor(presets.VALIDATION_PRESETS[name]()).report()
    obs.disable()
    events = len(obs.spans())
    obs.reset()

    overhead_s = events * max(site_cost_s, counter_cost_s)
    return {
        "site_cost_ns": site_cost_s * 1e9,
        "counter_cost_ns": counter_cost_s * 1e9,
        "events_per_cold_eval": events,
        "overhead_bound_s": overhead_s,
        "overhead_fraction": overhead_s / t_cold if t_cold > 0 else 0.0,
        "budget_fraction": OBS_OVERHEAD_BUDGET,
    }


def bench_preset(name: str) -> dict:
    """Time exact/cold/warm evaluation of one preset; verify parity."""
    build = presets.VALIDATION_PRESETS[name]

    with fastpath.disabled():
        start = time.perf_counter()
        exact_report = Processor(build()).report()
        t_exact = time.perf_counter() - start

    fastpath.clear_all()
    start = time.perf_counter()
    cold_report = Processor(build()).report()
    t_cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_report = Processor(build()).report()
    t_warm = time.perf_counter() - start

    identical = exact_report == cold_report == warm_report
    breakdown = timing_breakdown(Processor(build()))  # warm-path shares
    return {
        "preset": name,
        "exact_s": t_exact,
        "cold_s": t_cold,
        "warm_s": t_warm,
        "cold_speedup": t_exact / t_cold,
        "warm_speedup": t_exact / t_warm,
        "identical": identical,
        "component_breakdown_s": breakdown,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="single-chip evaluation fast-path benchmark",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: one preset, relaxed floor")
    parser.add_argument("--output", default=None,
                        metavar="PATH",
                        help="result JSON path (default "
                             "BENCH_single_eval.json; smoke runs write "
                             "BENCH_single_eval.smoke.json so they never "
                             "clobber a committed full-run payload)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = ("BENCH_single_eval.smoke.json" if args.smoke
                       else "BENCH_single_eval.json")

    names = (("niagara1",) if args.smoke
             else tuple(presets.VALIDATION_PRESETS))
    floor = SPEEDUP_FLOOR_SMOKE if args.smoke else SPEEDUP_FLOOR

    results = []
    failed = False
    for name in names:
        entry = bench_preset(name)
        results.append(entry)
        print(f"{name:<12} exact={entry['exact_s']:6.2f}s "
              f"cold={entry['cold_s']:6.3f}s warm={entry['warm_s']:6.3f}s "
              f"speedup={entry['cold_speedup']:5.1f}x "
              f"identical={entry['identical']}")
        if not entry["identical"]:
            print(f"FAIL: {name} fast-path report differs from exact",
                  file=sys.stderr)
            failed = True
        if entry["cold_speedup"] < floor:
            print(f"FAIL: {name} cold speedup "
                  f"{entry['cold_speedup']:.1f}x below {floor:.0f}x floor",
                  file=sys.stderr)
            failed = True

    overhead = bench_obs_overhead(names[0], results[0]["cold_s"])
    print(f"obs disabled-overhead bound: "
          f"{overhead['events_per_cold_eval']} sites x "
          f"{overhead['site_cost_ns']:.0f}ns = "
          f"{overhead['overhead_fraction']:.3%} of a cold eval "
          f"(budget {OBS_OVERHEAD_BUDGET:.0%})")
    if overhead["overhead_fraction"] >= OBS_OVERHEAD_BUDGET:
        print(f"FAIL: disabled instrumentation overhead "
              f"{overhead['overhead_fraction']:.2%} exceeds "
              f"{OBS_OVERHEAD_BUDGET:.0%} budget", file=sys.stderr)
        failed = True

    payload = {
        "benchmark": "single_eval",
        "smoke": args.smoke,
        "speedup_floor": floor,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "memo_stats": fastpath.stats(),
        "obs_overhead": overhead,
        "presets": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failed:
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
