#!/usr/bin/env python3
"""Track the single-eval benchmark across CI runs and gate on the floor.

CI restores the benchmark history (a JSONL file, one
``BENCH_single_eval.json`` payload per line) from the previous run's
cache, appends the run that just finished, re-uploads the history, and
fails the job if the new run's worst cold-eval speedup dropped below
the floor the payload itself declares (``speedup_floor``: 5x for full
runs, 3x for CI smoke runs on noisy shared runners).

Run::

    python benchmarks/bench_trend.py \
        --current BENCH_single_eval.json --history bench_history.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

#: History entries shown in the trend table.
TREND_WINDOW = 20


def load_history(path: Path) -> list[dict]:
    """Read prior runs, skipping unparseable lines."""
    runs: list[dict] = []
    if not path.exists():
        return runs
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            runs.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return runs


def worst_speedup(payload: dict) -> float:
    """The payload's gated speedup.

    Two payload shapes are understood: the single-eval benchmark
    reports per-preset ``cold_speedup`` entries (the worst one gates),
    and sweep-style benchmarks report one top-level ``speedup``.
    """
    if "speedup" in payload:
        return float(payload["speedup"])
    speedups = [p["cold_speedup"] for p in payload.get("presets", [])]
    if not speedups:
        raise SystemExit("benchmark payload has no preset results")
    return min(speedups)


def format_trend(runs: list[dict]) -> str:
    """Aligned table of the most recent runs' worst speedups."""
    lines = [f"{'run':>4} {'recorded':>20} {'worst speedup':>14} "
             f"{'floor':>6} {'smoke':>6}"]
    window = runs[-TREND_WINDOW:]
    offset = len(runs) - len(window)
    for i, run in enumerate(window):
        stamp = run.get("recorded_at", "-")
        lines.append(
            f"{offset + i + 1:>4} {stamp:>20} "
            f"{worst_speedup(run):>13.1f}x "
            f"{run.get('speedup_floor', 0.0):>5.1f}x "
            f"{str(bool(run.get('smoke', False))):>6}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="append a benchmark run to the trend history and "
                    "gate on its declared speedup floor",
    )
    parser.add_argument("--current", default="BENCH_single_eval.json",
                        metavar="PATH", help="payload of the run to add")
    parser.add_argument("--history", default="bench_history.jsonl",
                        metavar="PATH", help="JSONL history file")
    args = parser.parse_args(argv)

    current_path = Path(args.current)
    if not current_path.exists():
        raise SystemExit(f"no benchmark payload at {current_path}; "
                         f"run benchmarks/bench_single_eval.py first")
    payload = json.loads(current_path.read_text())
    payload["recorded_at"] = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime(),
    )

    history_path = Path(args.history)
    runs = load_history(history_path)
    runs.append(payload)
    with history_path.open("a") as handle:
        handle.write(json.dumps(payload, sort_keys=True) + "\n")

    print(f"benchmark trend ({len(runs)} run(s) on record):")
    print(format_trend(runs))

    floor = float(payload.get("speedup_floor", 0.0))
    worst = worst_speedup(payload)
    if worst < floor:
        print(f"FAIL: worst cold-eval speedup {worst:.1f}x is below the "
              f"{floor:.0f}x floor", file=sys.stderr)
        return 1
    print(f"ok: worst cold-eval speedup {worst:.1f}x >= {floor:.0f}x floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
