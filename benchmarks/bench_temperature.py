"""Benchmark regenerating the temperature-sensitivity figure (F-T).

Run with::

    pytest benchmarks/bench_temperature.py --benchmark-only -s
"""

from repro.experiments.temperature import (
    format_temperature_table,
    run_temperature_study,
)


def test_temperature_leakage_curve(benchmark):
    """F-T: chip leakage vs junction temperature (Niagara2)."""
    points = benchmark.pedantic(
        run_temperature_study, rounds=1, iterations=1)
    print("\nTemperature study")
    print(format_temperature_table(points))

    ordered = sorted(points, key=lambda p: p.temperature_k)
    leaks = [p.leakage_w for p in ordered]
    assert leaks == sorted(leaks)
    # ~an order of magnitude from 300 K to 380 K on HP devices.
    assert 4.0 < leaks[-1] / leaks[0] < 25.0
    # Leakage share of TDP grows with temperature.
    fractions = [p.leakage_fraction for p in ordered]
    assert fractions == sorted(fractions)
