"""Benchmarks regenerating the clustering case study (F-C1..F-C4).

A 64-core 22 nm CMP with 1/2/4/8/16 cores per cluster sharing an L2,
evaluated over SPLASH-2-like workloads. Run with::

    pytest benchmarks/bench_clustering.py --benchmark-only -s
"""

import pytest

from repro.experiments.clustering import (
    format_clustering_table,
    optimal_cluster_size,
    run_clustering_study,
)

_POINTS_CACHE = {}


def _points(n_cores=64):
    if n_cores not in _POINTS_CACHE:
        _POINTS_CACHE[n_cores] = run_clustering_study(n_cores=n_cores)
    return _POINTS_CACHE[n_cores]


def test_power_breakdown(benchmark):
    """F-C1: per-component power vs cluster size."""
    points = benchmark.pedantic(_points, rounds=1, iterations=1)
    print("\nClustering case study — full table")
    print(format_clustering_table(points))
    noc = [p.noc_power_w for p in points]
    assert noc == sorted(noc, reverse=True), (
        "NoC power must fall as clusters grow")


def test_performance(benchmark):
    """F-C2: runtime/throughput vs cluster size."""
    points = benchmark.pedantic(_points, rounds=1, iterations=1)
    print("\nPerformance vs cluster size")
    for p in points:
        print(f"  {p.cores_per_cluster:>2} cores/cluster: "
              f"{p.throughput_gips:6.1f} GIPS, {p.runtime_s:.3f} s")
    best = min(points, key=lambda p: p.runtime_s)
    worst = max(points, key=lambda p: p.runtime_s)
    assert best.runtime_s < worst.runtime_s


def test_edp(benchmark):
    """F-C3: energy-delay product vs cluster size."""
    points = benchmark.pedantic(_points, rounds=1, iterations=1)
    print("\nEDP vs cluster size")
    for p in points:
        print(f"  {p.cores_per_cluster:>2}: EDP = {p.edp:9.1f} J*s")
    best = optimal_cluster_size(points, "edp")
    print(f"EDP-optimal cluster size: {best}")
    assert best > 1, "some clustering should beat fully private L2s"


def test_ed2p(benchmark):
    """F-C4: energy-delay^2 product vs cluster size."""
    points = benchmark.pedantic(_points, rounds=1, iterations=1)
    print("\nED^2P vs cluster size")
    for p in points:
        print(f"  {p.cores_per_cluster:>2}: ED2P = {p.ed2p:10.1f} J*s^2")
    edp_opt = optimal_cluster_size(points, "edp")
    ed2p_opt = optimal_cluster_size(points, "ed2p")
    print(f"EDP optimum {edp_opt}, ED2P optimum {ed2p_opt}")
    # ED^2P weighs delay harder: its optimum is not a larger cluster.
    assert ed2p_opt <= 2 * edp_opt
