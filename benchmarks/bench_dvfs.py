"""Benchmark regenerating the DVFS / EPI extension figure (F-V).

Run with::

    pytest benchmarks/bench_dvfs.py --benchmark-only -s
"""

from repro.experiments.dvfs import format_dvfs_table, run_dvfs_study


def test_dvfs_epi_curve(benchmark):
    """F-V: EPI and throughput vs supply voltage (Niagara2, barnes)."""
    points = benchmark.pedantic(run_dvfs_study, rounds=1, iterations=1)
    print("\nDVFS study")
    print(format_dvfs_table(points))

    by_vdd = sorted(points, key=lambda p: p.vdd_v)
    epis = [p.epi_nj for p in by_vdd]
    throughputs = [p.throughput_gips for p in by_vdd]
    powers = [p.power_w for p in by_vdd]

    # Shape: all three rise with Vdd; EPI falls super-linearly downward.
    assert epis == sorted(epis)
    assert throughputs == sorted(throughputs)
    assert powers == sorted(powers)
    # The efficiency claim: the lowest-Vdd point trades < 20% throughput
    # for > 30% power (EPI win).
    low, high = by_vdd[0], by_vdd[-2]  # -2 = nominal
    assert low.throughput_gips > 0.8 * high.throughput_gips
    assert low.power_w < 0.85 * high.power_w
