"""Benchmarks regenerating the validation tables (T1-T5, F-A).

Each benchmark times the full modeling run for one validation target and
prints the published-vs-modeled table the paper reports. Run with::

    pytest benchmarks/bench_validation.py --benchmark-only -s
"""

import pytest

from repro.chip import Processor
from repro.config import presets
from repro.experiments import (
    PUBLISHED,
    format_validation_table,
    run_validation,
)

CHIPS = tuple(PUBLISHED)


def test_table1_configs(benchmark):
    """T1: the four validation targets' configurations."""
    def build_all():
        return {name: presets.VALIDATION_PRESETS[name]()
                for name in CHIPS}

    configs = benchmark(build_all)
    print("\nTable 1 — validation target configurations")
    print(f"{'chip':<12} {'node':>5} {'clock':>8} {'cores':>6} "
          f"{'threads':>8} {'ooo':>4}")
    for name, config in configs.items():
        print(f"{name:<12} {config.node_nm:>5} "
              f"{config.clock_hz / 1e9:>7.1f}G {config.n_cores:>6} "
              f"{config.core.hardware_threads:>8} "
              f"{'y' if config.core.is_ooo else 'n':>4}")
    assert len(configs) == 4


@pytest.mark.parametrize("chip", CHIPS)
def test_power_validation(benchmark, chip):
    """T2-T5: per-chip power validation (published vs modeled)."""
    def model():
        processor = Processor(presets.VALIDATION_PRESETS[chip]())
        return processor, processor.report(activity=None)

    processor, _ = benchmark.pedantic(model, rounds=1, iterations=1)
    rows = [r for r in run_validation((chip,)) if r.chip == chip]
    print(f"\n{PUBLISHED[chip].name} — power validation")
    print(format_validation_table(rows))
    power_row = next(r for r in rows if r.metric == "power_w")
    assert abs(power_row.error_fraction) < 0.25


def test_area_validation(benchmark):
    """F-A: die-area validation figure across all four chips."""
    rows = benchmark.pedantic(
        lambda: [r for r in run_validation() if r.metric == "area_mm2"],
        rounds=1, iterations=1,
    )
    print("\nArea validation (published vs modeled, mm^2)")
    print(format_validation_table(rows))
    for row in rows:
        assert abs(row.error_fraction) < 0.40, row
