"""Benchmark regenerating the manycore-scaling extension figure (F-M).

Run with::

    pytest benchmarks/bench_manycore_scaling.py --benchmark-only -s
"""

from repro.experiments.manycore_scaling import (
    format_scaling_points,
    run_manycore_scaling,
)


def test_manycore_scaling_figure(benchmark):
    """F-M: max cores under fixed area+power budgets across nodes."""
    points = benchmark.pedantic(
        run_manycore_scaling, rounds=1, iterations=1)
    print("\nManycore scaling study (260 mm^2 / 130 W budgets)")
    print(format_scaling_points(points))

    ordered = sorted(points, key=lambda p: -p.node_nm)
    counts = [p.max_cores for p in ordered]
    # Core counts grow (weakly) monotonically as nodes shrink...
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]
    # ...and the binding constraint flips from area to power at the end
    # (the dark-silicon transition).
    assert ordered[0].limiter == "area"
    assert ordered[-1].limiter == "power"
